// Offline trace analyses (DESIGN.md §12): per-flow timelines, causal-link
// validation, convergence diagnostics, churn / utilization / control
// overhead summaries, and A/B run comparison.
//
// Everything here is a pure function of loaded RunData — no simulator
// types, no side effects — so analyses compose and test in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scope/run_loader.h"

namespace dard::scope {

// One path change of one flow, with its causal attribution.
struct MoveStep {
  double time = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  double bonf_delta = 0;        // ground-truth gain at move time
  std::uint64_t cause_id = 0;   // 0 = unattributed
  // Index into the trace of the DardRound event this move resolved to, or
  // -1 (unattributed / dangling). Resolution requires the round to appear
  // strictly before the move in the trace.
  std::ptrdiff_t cause_event = -1;
};

// Lifecycle of one flow reassembled from the event stream.
struct FlowTimeline {
  std::uint32_t flow = 0;
  double arrive_time = -1;
  double elephant_time = -1;  // -1 = never promoted
  double complete_time = -1;  // -1 = still active at end of trace
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double size = 0;
  std::uint32_t first_path = 0;
  std::vector<MoveStep> moves;

  [[nodiscard]] double transfer_s() const {
    return complete_time >= 0 && arrive_time >= 0
               ? complete_time - arrive_time
               : -1;
  }
};

// Builds per-flow timelines in flow-id order. Trace order is event order;
// flows appearing mid-trace (ring-buffer truncation) get arrive_time -1.
[[nodiscard]] std::vector<FlowTimeline> build_timelines(
    const std::vector<obs::TraceEvent>& trace);

// Causal-link audit over every FlowMove in the trace.
struct CauseAudit {
  std::size_t moves = 0;        // all FlowMove events
  std::size_t attributed = 0;   // cause_id != 0
  std::size_t resolved = 0;     // cause resolves to a prior accepted DardRound
  std::size_t dangling = 0;     // cause_id != 0 but no such prior round
  [[nodiscard]] bool clean() const { return dangling == 0; }
};

[[nodiscard]] CauseAudit audit_causes(
    const std::vector<obs::TraceEvent>& trace);

// Convergence diagnostics. A "round" is one DardRound evaluation (each has
// a unique round id); "scheduling instants" groups evaluations that fired
// at the same simulated time (one host's round visits several monitors).
struct Convergence {
  std::size_t evaluations = 0;          // DardRound events
  std::size_t scheduling_instants = 0;  // distinct DardRound timestamps
  std::size_t moves = 0;                // accepted evaluations
  // Evaluations (resp. instants) up to and including the last accepted
  // move: how much scheduling work it took to reach quiescence. 0 when the
  // trace has no accepted move.
  std::size_t rounds_to_quiescence = 0;
  std::size_t instants_to_quiescence = 0;
  double last_move_time = -1;           // -1 = no moves
  double quiescent_tail_s = 0;          // trace span after the last move
  // Oscillation: a flow moving back to a path it left within the last
  // `window` of its own moves (window measured in moves, i.e. A->B ...
  // ->A with at most `window` intervening moves of that flow).
  std::size_t oscillation_window = 0;
  std::size_t oscillations = 0;
  std::vector<std::uint32_t> oscillating_flows;  // unique, ascending
};

[[nodiscard]] Convergence analyze_convergence(
    const std::vector<obs::TraceEvent>& trace, std::size_t window = 4);

// Path-churn summary over the flow timelines.
struct ChurnSummary {
  std::size_t flows = 0;
  std::size_t elephants = 0;
  std::size_t flows_moved = 0;
  std::size_t total_moves = 0;
  std::size_t max_moves_per_flow = 0;
  std::uint32_t max_moves_flow = 0;  // a flow achieving the max
  [[nodiscard]] double moves_per_elephant() const {
    return elephants == 0 ? 0
                          : static_cast<double>(total_moves) /
                                static_cast<double>(elephants);
  }
};

[[nodiscard]] ChurnSummary summarize_churn(
    const std::vector<FlowTimeline>& timelines);

// Link-utilization summary from the link sampler CSV.
struct UtilizationSummary {
  bool recorded = false;  // false = run had no link samples
  std::size_t links = 0;
  std::size_t samples = 0;
  double mean_utilization = 0;  // over all (link, time) samples
  double peak_utilization = 0;
  std::string peak_link;        // "src->dst" of the hottest sample
  double peak_time = 0;
};

[[nodiscard]] UtilizationSummary summarize_utilization(
    const std::vector<LinkSample>& samples);

// Control-plane overhead from the dard.* counters (zeros when the run had
// no metrics file or a non-DARD scheduler).
struct ControlOverhead {
  bool recorded = false;
  double control_msgs = 0;
  double monitor_queries = 0;
  double query_timeouts = 0;
  double query_retries = 0;
  double moves_proposed = 0;
  double moves_accepted = 0;
  double moves_rejected = 0;
  double delta_rejections = 0;
  double fallback_rounds = 0;
};

[[nodiscard]] ControlOverhead summarize_control(const RunData& run);

// --- Control-plane span analyses (DESIGN.md §17; schema v5 traces). ---

// Causal audit plus aggregates over every Span event in the trace. A span's
// parent must reference a strictly earlier span id or accepted DardRound
// round id — the recorder emits parents before children, so a dangling
// parent means a corrupted or truncated-at-the-wrong-place trace.
struct SpanAudit {
  std::size_t spans = 0;
  std::size_t query_spans = 0;
  std::size_t refresh_spans = 0;
  std::size_t decision_spans = 0;
  std::size_t move_spans = 0;
  std::size_t parented = 0;   // parent != 0
  std::size_t resolved = 0;   // parent references an earlier span/round id
  std::size_t dangling = 0;   // parented but unresolved
  std::uint64_t attempts = 0; // query wire round-trips (Query spans)
  std::uint64_t timeouts = 0;
  std::uint64_t lost = 0;
  std::uint64_t bytes = 0;    // control bytes attributed by Refresh spans
  [[nodiscard]] bool clean() const { return dangling == 0; }
};

[[nodiscard]] SpanAudit audit_spans(const std::vector<obs::TraceEvent>& trace);

// Per-daemon span activity, ascending host id.
struct DaemonSpanSummary {
  std::uint32_t host = 0;
  std::size_t refreshes = 0;
  std::size_t queries = 0;
  std::size_t decisions = 0;
  std::size_t moves = 0;
  std::uint64_t attempts = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t lost = 0;
  std::uint64_t bytes = 0;
  double max_chain_s = 0;   // slowest refresh→move chain on this daemon
  double total_chain_s = 0; // summed move-span durations
};

[[nodiscard]] std::vector<DaemonSpanSummary> summarize_daemon_spans(
    const std::vector<obs::TraceEvent>& trace);

// Complete refresh→decision→move chains (one per Move span), slowest
// first; ties broken by time then host for determinism.
struct SpanChain {
  double time = 0;            // when the move applied
  std::uint32_t host = 0;
  std::uint32_t flow = 0;
  std::uint64_t round_id = 0; // the winning dard_round (span parent)
  double duration_s = 0;      // refresh start → move
};

[[nodiscard]] std::vector<SpanChain> slowest_chains(
    const std::vector<obs::TraceEvent>& trace, std::size_t top_n = 10);

// A/B comparison. Metric deltas come from manifest results and counters;
// per-flow regressions match completed flows by id across the two runs
// (meaningful when both runs used the same workload seed — the diff says so
// when seeds differ).
struct MetricDelta {
  std::string name;
  double a = 0;
  double b = 0;
  [[nodiscard]] double delta() const { return b - a; }
  [[nodiscard]] double percent() const {
    return a == 0 ? 0 : (b - a) / a * 100.0;
  }
};

struct FlowRegression {
  std::uint32_t flow = 0;
  double a_transfer_s = 0;
  double b_transfer_s = 0;
  [[nodiscard]] double delta_s() const { return b_transfer_s - a_transfer_s; }
};

struct RunDiff {
  bool same_seed = true;
  bool comparable = true;  // both runs have manifests
  // Same fabric shape: topology name, node/link counts and every
  // "topology_params" field agree. Transfer-time deltas between different
  // fabrics measure the fabric, not the scheduler — the diff warns.
  bool same_fabric = true;
  std::vector<MetricDelta> metrics;
  std::size_t matched_flows = 0;
  std::size_t regressed_flows = 0;  // completion time got worse in B
  std::size_t improved_flows = 0;
  // Flows that completed in only one of the runs: a diff that hides them
  // would call two runs with different flow populations "no regressions".
  std::size_t disappeared_flows = 0;  // completed in A only
  std::size_t appeared_flows = 0;     // completed in B only
  // Ascending flow ids, each capped by the caller's top_n.
  std::vector<std::uint32_t> disappeared_ids;
  std::vector<std::uint32_t> appeared_ids;
  // Worst regressions first, capped by the caller's request.
  std::vector<FlowRegression> top_regressions;
};

[[nodiscard]] RunDiff diff_runs(const RunData& a, const RunData& b,
                                std::size_t top_n = 10);

}  // namespace dard::scope
