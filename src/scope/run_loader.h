// Run-directory loader: dardscope's input side (DESIGN.md §12).
//
// A "run" is either a directory dardsim wrote with --run-dir (manifest +
// trace + metrics + sampler CSVs) or a bare trace.jsonl (trace-only
// analyses still work; everything fed by the other artifacts degrades to
// "not recorded"). The manifest is kept as a generic parsed JSON value plus
// typed accessors for the fields the reports use, so a newer manifest never
// breaks an older dardscope.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/observer.h"

namespace dard::scope {

// One metrics.csv row (obs::MetricsRegistry::write_csv). Latency rows carry
// mean/min/max; counters and gauges leave them at 0.
struct MetricRow {
  std::string kind;  // "counter" | "gauge" | "latency"
  double count = 0;
  double value = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
};

// One link_samples.csv row.
struct LinkSample {
  double time = 0;
  std::uint32_t link = 0;
  std::string src;
  std::string dst;
  double capacity_bps = 0;
  double used_bps = 0;
  double utilization = 0;
};

// One control_bytes.csv row (obs::SpanRecorder::write_link_csv): wire bytes
// the control plane spent on one link over the whole run. Only written for
// --spans runs; zero-byte links are omitted at write time.
struct ControlByteRow {
  std::uint32_t link = 0;
  std::string src;
  std::string dst;
  std::uint64_t bytes = 0;
};

// One agg_samples.csv row.
struct AggSample {
  double time = 0;
  double active_flows = 0;
  double active_elephants = 0;
  double throughput_bps = 0;
  double max_utilization = 0;
};

struct RunData {
  std::string source;  // the path given on the command line
  bool is_directory = false;

  // Present only for a run directory with a manifest.json.
  std::unique_ptr<json::Value> manifest;

  std::vector<obs::TraceEvent> trace;
  std::map<std::string, MetricRow> metrics;       // empty = not recorded
  std::vector<LinkSample> link_samples;           // empty = not recorded
  std::vector<AggSample> agg_samples;             // empty = not recorded
  std::vector<ControlByteRow> control_bytes;      // empty = not recorded

  // Manifest lookups; fall back when the manifest (or the field) is absent.
  [[nodiscard]] std::string manifest_string(const std::string& key,
                                            std::string fallback = "") const;
  [[nodiscard]] double manifest_number(const std::string& key,
                                       double fallback = 0) const;
  // Dotted path into a nested object, e.g. "results.avg_transfer_s".
  [[nodiscard]] double manifest_path_number(const std::string& dotted,
                                            double fallback = 0) const;
  [[nodiscard]] double metric_value(const std::string& name,
                                    double fallback = 0) const;
};

// Loads a run from `path`: a directory (manifest-directed artifact set,
// falling back to canonical file names when manifest.json is missing) or a
// single JSONL trace file. Returns false and fills *error on any
// malformed/unreadable input.
[[nodiscard]] bool load_run(const std::string& path, RunData* out,
                            std::string* error);

// Standalone artifact readers, shared with the live tailer (which reads
// artifacts piecemeal while dardsim is still writing them).
[[nodiscard]] bool load_metrics_file(const std::string& path,
                                     std::map<std::string, MetricRow>* out,
                                     std::string* error);
// One link_samples.csv data row -> LinkSample. Returns false on malformed
// rows (and on the header row, which starts with a non-numeric cell).
[[nodiscard]] bool parse_link_sample_row(const std::string& line,
                                         LinkSample* out);

}  // namespace dard::scope
