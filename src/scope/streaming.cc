#include "scope/streaming.h"

#include <algorithm>

namespace dard::scope {

using obs::TraceEvent;
using obs::TraceEventKind;

void StreamingAnalyzer::note_accepted_round(std::uint64_t id) {
  if (round_ids_.insert(id).second) {
    round_order_.push_back(id);
    if (round_order_.size() > kRoundIdWindow) {
      round_ids_.erase(round_order_.front());
      round_order_.pop_front();
    }
  }
}

void StreamingAnalyzer::fold_flow(std::uint32_t id, const LiveFlow& f) {
  ++totals_.completed_flows;
  if (f.elephant) ++folded_elephants_;
  if (f.moves == 0) return;
  ++folded_flows_moved_;
  folded_total_moves_ += f.moves;
  // (strictly more moves) or (tied and lower id) reproduces the offline
  // winner — the lowest-id flow among those achieving the maximum — no
  // matter in which order flows complete.
  if (f.moves > folded_max_moves_ ||
      (f.moves == folded_max_moves_ && id < folded_max_flow_)) {
    folded_max_moves_ = f.moves;
    folded_max_flow_ = id;
  }
}

void StreamingAnalyzer::on_event(const TraceEvent& e) {
  ++totals_.trace_events;
  totals_.last_event_time = std::max(totals_.last_event_time, e.time);
  trace_end_ = std::max(trace_end_, e.time);

  // First sight of a flow id opens its live entry (any flow event counts:
  // a truncated trace can open with a bare move or completion).
  const auto touch = [&](std::uint32_t flow) -> LiveFlow& {
    const auto [it, inserted] = live_.try_emplace(flow);
    if (inserted) {
      ++totals_.flows_seen;
      ++totals_.live_flows;
    }
    return it->second;
  };

  switch (e.kind) {
    case TraceEventKind::FlowArrive:
      touch(e.flow.value());
      break;
    case TraceEventKind::FlowElephant:
      touch(e.flow.value()).elephant = true;
      break;
    case TraceEventKind::FlowMove: {
      LiveFlow& f = touch(e.flow.value());

      ++causes_.moves;
      if (e.cause_id != 0) {
        ++causes_.attributed;
        if (round_ids_.count(e.cause_id) > 0)
          ++causes_.resolved;
        else
          ++causes_.dangling;
      }

      ++moves_;
      last_move_time_ = e.time;
      evals_at_last_move_ = evaluations_;
      instants_at_last_move_ = instants_;

      if (std::find(f.left_paths.begin(), f.left_paths.end(), e.path_to) !=
          f.left_paths.end()) {
        ++oscillations_;
        oscillating_.insert(e.flow.value());
      }
      f.left_paths.push_back(e.path_from);
      if (f.left_paths.size() > window_) f.left_paths.erase(f.left_paths.begin());

      ++f.moves;
      break;
    }
    case TraceEventKind::FlowComplete: {
      const std::uint32_t id = e.flow.value();
      const auto it = live_.find(id);
      if (it != live_.end()) {
        fold_flow(id, it->second);
        live_.erase(it);
        --totals_.live_flows;
      } else {
        // Completion without any prior event for the flow (truncation):
        // still one distinct, completed, unmoved flow.
        ++totals_.flows_seen;
        fold_flow(id, LiveFlow{});
      }
      break;
    }
    case TraceEventKind::DardRound:
      ++evaluations_;
      if (!any_round_ || e.time != last_round_time_) ++instants_;
      any_round_ = true;
      last_round_time_ = e.time;
      if (e.accepted && e.cause_id != 0) note_accepted_round(e.cause_id);
      break;
    case TraceEventKind::Fault:
      ++totals_.fault_events;
      break;
    case TraceEventKind::Snapshot:
      ++totals_.snapshot_events;
      if (e.snapshot != nullptr) last_snapshot_ = e.snapshot;
      break;
    case TraceEventKind::Span:
      ++totals_.span_events;
      ++spans_.spans;
      switch (e.span_kind) {
        case obs::SpanKind::Query:
          ++spans_.query_spans;
          spans_.attempts += e.span_attempts;
          spans_.timeouts += e.span_timeouts;
          spans_.lost += e.span_lost;
          break;
        case obs::SpanKind::Refresh:
          ++spans_.refresh_spans;
          spans_.bytes += e.span_bytes;
          break;
        case obs::SpanKind::Decision:
          ++spans_.decision_spans;
          break;
        case obs::SpanKind::Move:
          ++spans_.move_spans;
          break;
        case obs::SpanKind::None:
          break;
      }
      if (e.parent_id != 0) {
        ++spans_.parented;
        if (round_ids_.count(e.parent_id) > 0)
          ++spans_.resolved;
        else
          ++spans_.dangling;
      }
      if (e.cause_id != 0) note_accepted_round(e.cause_id);
      break;
  }
}

void StreamingAnalyzer::on_link_sample(const LinkSample& s) {
  ++util_samples_;
  util_total_ += s.utilization;
  util_links_.insert(s.link);
  if (s.utilization > util_peak_) {
    util_peak_ = s.utilization;
    util_peak_link_ = s.src + "->" + s.dst;
    util_peak_time_ = s.time;
  }
}

Convergence StreamingAnalyzer::convergence() const {
  Convergence c;
  c.oscillation_window = window_;
  c.evaluations = evaluations_;
  c.scheduling_instants = instants_;
  c.moves = moves_;
  c.rounds_to_quiescence = evals_at_last_move_;
  c.instants_to_quiescence = instants_at_last_move_;
  c.last_move_time = last_move_time_;
  if (last_move_time_ >= 0) c.quiescent_tail_s = trace_end_ - last_move_time_;
  c.oscillations = oscillations_;
  c.oscillating_flows.assign(oscillating_.begin(), oscillating_.end());
  return c;
}

ChurnSummary StreamingAnalyzer::churn() const {
  ChurnSummary s;
  s.flows = totals_.flows_seen;
  s.elephants = folded_elephants_;
  s.flows_moved = folded_flows_moved_;
  s.total_moves = folded_total_moves_;
  s.max_moves_per_flow = folded_max_moves_;
  s.max_moves_flow = folded_max_flow_;
  // Fold the still-live flows in ascending-id order (live_ is a std::map),
  // without disturbing the stream state.
  for (const auto& [id, f] : live_) {
    if (f.elephant) ++s.elephants;
    if (f.moves == 0) continue;
    ++s.flows_moved;
    s.total_moves += f.moves;
    if (f.moves > s.max_moves_per_flow ||
        (f.moves == s.max_moves_per_flow && id < s.max_moves_flow)) {
      s.max_moves_per_flow = f.moves;
      s.max_moves_flow = id;
    }
  }
  return s;
}

UtilizationSummary StreamingAnalyzer::utilization() const {
  UtilizationSummary s;
  if (util_samples_ == 0) return s;
  s.recorded = true;
  s.links = util_links_.size();
  s.samples = util_samples_;
  s.mean_utilization = util_total_ / static_cast<double>(util_samples_);
  s.peak_utilization = util_peak_;
  s.peak_link = util_peak_link_;
  s.peak_time = util_peak_time_;
  return s;
}

}  // namespace dard::scope
