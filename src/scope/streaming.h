// Incremental (streaming) trace analysis: the engine behind
// `dardscope live` (DESIGN.md §13).
//
// StreamingAnalyzer consumes trace events and link samples one at a time —
// in trace order, which the simulator's single event queue guarantees is
// non-decreasing in time — and maintains the same headline metrics the
// offline report computes from a fully-loaded trace: convergence
// (evaluations, scheduling instants, accepted moves, oscillations), path
// churn, the causal-link audit, and link utilization. Its contract, pinned
// by tests/streaming_test.cc: after feeding a complete trace, convergence()
// / churn() / causes() / utilization() equal analyze_convergence() /
// summarize_churn() / audit_causes() / summarize_utilization() on the same
// data, field for field.
//
// Memory is bounded by the *live* state of the run, not the trace length:
//  * per-flow state (move count, elephant flag, the oscillation window of
//    recently-left paths) exists only while the flow is active and is
//    folded into scalar aggregates on FlowComplete — a completed flow never
//    moves again, so nothing is lost;
//  * accepted DARD round ids are kept in a bounded ring (kRoundIdWindow)
//    for resolving each move's cause id — in every trace the simulator
//    writes, a move cites a round from the same scheduling instant, so the
//    window is effectively infinite; a pathological trace citing a round
//    more than kRoundIdWindow accepted rounds back would count the move as
//    dangling where the offline audit resolves it;
//  * distinct scheduling instants are counted with one comparison against
//    the previous DardRound timestamp (times are non-decreasing), not a
//    set of timestamps.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_set>
#include <vector>

#include "scope/analysis.h"

namespace dard::scope {

class StreamingAnalyzer {
 public:
  // Accepted-round-id ring capacity (see header comment).
  static constexpr std::size_t kRoundIdWindow = 65536;

  explicit StreamingAnalyzer(std::size_t oscillation_window = 4)
      : window_(oscillation_window) {}

  // Feed one trace event (in trace order).
  void on_event(const obs::TraceEvent& e);
  // Feed one link-utilization sample (any order; only aggregates are kept).
  void on_link_sample(const LinkSample& s);

  // Stream totals, updated on every event.
  struct Totals {
    std::size_t trace_events = 0;
    std::size_t fault_events = 0;
    std::size_t snapshot_events = 0;
    std::size_t span_events = 0;
    std::size_t flows_seen = 0;  // distinct flow ids
    std::size_t live_flows = 0;  // seen but not yet completed
    std::size_t completed_flows = 0;
    double last_event_time = 0;
  };
  [[nodiscard]] const Totals& totals() const { return totals_; }

  // The most recent Snapshot event's payload (null until one streams past).
  [[nodiscard]] const std::shared_ptr<const obs::SnapshotStats>&
  last_snapshot() const {
    return last_snapshot_;
  }

  // Current summaries. Each call assembles a value from the aggregates plus
  // the still-live flows, so they are valid mid-stream and final once the
  // trace is exhausted.
  [[nodiscard]] const CauseAudit& causes() const { return causes_; }
  // Span aggregates + online parent audit; equals audit_spans() on the same
  // trace (span ids share the bounded ring caveat of the move audit).
  [[nodiscard]] const SpanAudit& spans() const { return spans_; }
  [[nodiscard]] Convergence convergence() const;
  [[nodiscard]] ChurnSummary churn() const;
  [[nodiscard]] UtilizationSummary utilization() const;

 private:
  struct LiveFlow {
    std::uint32_t moves = 0;
    bool elephant = false;
    // The last `window_` paths this flow left, oldest first (the offline
    // analyzer's per-flow history, kept only while the flow lives).
    std::vector<std::uint32_t> left_paths;
  };

  void fold_flow(std::uint32_t id, const LiveFlow& f);
  void note_accepted_round(std::uint64_t id);

  std::size_t window_;
  Totals totals_;
  CauseAudit causes_;
  std::shared_ptr<const obs::SnapshotStats> last_snapshot_;

  // Live flows by id; std::map so finalizing folds in ascending-id order.
  std::map<std::uint32_t, LiveFlow> live_;

  // Churn aggregates over completed flows (live flows folded on demand).
  std::size_t folded_elephants_ = 0;
  std::size_t folded_flows_moved_ = 0;
  std::size_t folded_total_moves_ = 0;
  std::size_t folded_max_moves_ = 0;
  std::uint32_t folded_max_flow_ = 0;

  // Convergence aggregates.
  std::size_t evaluations_ = 0;
  std::size_t instants_ = 0;
  bool any_round_ = false;
  double last_round_time_ = 0;
  std::size_t moves_ = 0;
  double last_move_time_ = -1;
  std::size_t evals_at_last_move_ = 0;
  std::size_t instants_at_last_move_ = 0;
  double trace_end_ = 0;
  std::size_t oscillations_ = 0;
  std::set<std::uint32_t> oscillating_;

  // Causal audit: bounded ring of recently-accepted round ids. Span ids
  // join the same ring — spans, rounds and moves share one id space, and a
  // parent may cite either an earlier span or an earlier accepted round.
  std::unordered_set<std::uint64_t> round_ids_;
  std::deque<std::uint64_t> round_order_;
  SpanAudit spans_;

  // Utilization aggregates.
  std::size_t util_samples_ = 0;
  double util_total_ = 0;
  double util_peak_ = 0;
  std::string util_peak_link_;
  double util_peak_time_ = 0;
  std::set<std::uint32_t> util_links_;
};

}  // namespace dard::scope
