// Game-theoretic machinery from the paper's appendix.
//
// The selfish flow scheduling is a congestion game (F, G, {r_f}): each flow
// picks one route from its equal-cost set; a link's BoNF is its bandwidth
// over the number of flows crossing it; a flow's payoff is the smallest
// BoNF on its route. The appendix proves (Theorem 2) that asynchronous
// selfish moves strictly decrease the δ-binned state vector
// SV(s) = [v_0, v_1, ...] (v_k = number of links with BoNF in
// [kδ, (k+1)δ)) in lexicographic order, hence play converges to a Nash
// equilibrium in finitely many steps. This module makes those objects
// concrete so tests and benches can check them on real instances.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "topology/paths.h"
#include "topology/topology.h"

namespace dard::analysis {

struct GameFlow {
  // Candidate routes (each a link list); `route` indexes the current one.
  std::vector<std::vector<LinkId>> routes;
  std::uint32_t route = 0;
};

// Lexicographic-ordered δ-binned link census. SV(a) < SV(b) means strategy
// a has strictly fewer links in the smallest differing BoNF bin.
struct StateVector {
  std::vector<std::uint32_t> bins;

  // <0, 0, >0 like a three-way compare.
  [[nodiscard]] int compare(const StateVector& other) const;
};

class CongestionGame {
 public:
  CongestionGame(const topo::Topology& t, std::vector<GameFlow> flows);

  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] const GameFlow& flow(std::size_t f) const {
    return flows_[f];
  }

  [[nodiscard]] double link_bonf(LinkId l) const;
  // S(s): the smallest BoNF over links carrying at least one flow.
  [[nodiscard]] double min_bonf() const;
  // S_f(s): the smallest BoNF along flow f's current route.
  [[nodiscard]] double flow_bonf(std::size_t f) const;

  [[nodiscard]] StateVector state_vector(double delta) const;

  // Exact payoff of flow f if it unilaterally moved to `route`.
  [[nodiscard]] double payoff_if_moved(std::size_t f,
                                       std::uint32_t route) const;

  // Best unilateral deviation improving f's payoff by more than `delta`;
  // returns false when f is locally optimal.
  [[nodiscard]] bool best_response(std::size_t f, double delta,
                                   std::uint32_t* out_route) const;

  [[nodiscard]] bool is_nash(double delta) const;

  // Applies a move (used by the dynamics below and by tests).
  void move(std::size_t f, std::uint32_t route);

 private:
  void add_route(const std::vector<LinkId>& route, int direction);

  const topo::Topology* topo_;
  std::vector<GameFlow> flows_;
  std::vector<std::uint32_t> flows_on_;  // link -> flow count
};

struct PlayResult {
  std::size_t rounds = 0;          // full sweeps over all flows
  std::size_t moves = 0;           // accepted deviations
  bool converged = false;          // reached Nash within the round budget
  bool potential_monotone = true;  // SV strictly decreased on every move
  double initial_min_bonf = 0;
  double final_min_bonf = 0;
};

// Asynchronous best-response dynamics: sweep flows in random order, each
// making its best improving move (> delta), until a full sweep makes no
// move. Checks Theorem 2's potential argument along the way.
[[nodiscard]] PlayResult play_until_converged(CongestionGame& game,
                                              double delta, Rng& rng,
                                              std::size_t max_rounds = 1000);

// Random instance factory for property tests / ablations: `flow_count`
// flows between random distinct-ToR host pairs, each with its full
// equal-cost route set, starting from random routes.
[[nodiscard]] CongestionGame random_game(const topo::Topology& t,
                                         std::size_t flow_count, Rng& rng);

}  // namespace dard::analysis
