// Global-optimum search for the flow-to-path assignment problem.
//
// The abstract claims the Nash equilibria DARD converges to have a small
// gap to the optimal assignment. These helpers compute (or tightly
// approximate) the assignment maximizing the global minimum BoNF —
// exhaustively when the strategy space is small, otherwise by
// multi-restart steepest-ascent local search — so benches and tests can
// measure that gap on concrete instances.
#pragma once

#include "analysis/congestion_game.h"

namespace dard::analysis {

struct OptimumResult {
  double min_bonf = 0;
  std::vector<std::uint32_t> routes;  // per flow
  bool exhaustive = false;            // true when provably optimal
  std::uint64_t states_examined = 0;
};

// Enumerates every joint strategy when the product of route-set sizes is
// at most `max_states`; otherwise falls back to local_search_optimum.
[[nodiscard]] OptimumResult find_optimum(const CongestionGame& game, Rng& rng,
                                         std::uint64_t max_states = 1u << 20);

// Multi-restart steepest-ascent over single-flow moves, maximizing
// (min BoNF, then lexicographically smaller state vector).
[[nodiscard]] OptimumResult local_search_optimum(const CongestionGame& game,
                                                 Rng& rng, int restarts = 8,
                                                 int max_steps = 2000);

// Convenience for benches: min-BoNF ratio Nash/optimum in [0, 1].
[[nodiscard]] double nash_gap_ratio(double nash_min_bonf,
                                    const OptimumResult& optimum);

}  // namespace dard::analysis
