#include "analysis/optimum.h"

#include <algorithm>

#include "common/check.h"

namespace dard::analysis {

namespace {

// (min BoNF, state vector) objective: larger min first, then smaller SV.
struct Objective {
  double min_bonf;
  StateVector sv;

  bool better_than(const Objective& other) const {
    if (min_bonf != other.min_bonf) return min_bonf > other.min_bonf;
    return sv.compare(other.sv) < 0;
  }
};

Objective evaluate(const CongestionGame& game, double bin) {
  return Objective{game.min_bonf(), game.state_vector(bin)};
}

std::vector<std::uint32_t> current_routes(const CongestionGame& game) {
  std::vector<std::uint32_t> routes(game.flow_count());
  for (std::size_t f = 0; f < game.flow_count(); ++f)
    routes[f] = game.flow(f).route;
  return routes;
}

}  // namespace

OptimumResult find_optimum(const CongestionGame& game, Rng& rng,
                           std::uint64_t max_states) {
  // Size the joint strategy space.
  std::uint64_t states = 1;
  bool small = true;
  for (std::size_t f = 0; f < game.flow_count() && small; ++f) {
    states *= game.flow(f).routes.size();
    if (states > max_states) small = false;
  }
  if (!small || game.flow_count() == 0)
    return local_search_optimum(game, rng);

  CongestionGame work = game;
  const double bin = 1 * kMbps;
  OptimumResult best;
  best.exhaustive = true;

  // Odometer over all joint strategies.
  std::vector<std::uint32_t> routes(game.flow_count(), 0);
  for (std::size_t f = 0; f < routes.size(); ++f) work.move(f, 0);
  Objective best_obj = evaluate(work, bin);
  best.routes = routes;
  best.min_bonf = best_obj.min_bonf;
  ++best.states_examined;

  while (true) {
    // Increment the odometer.
    std::size_t f = 0;
    while (f < routes.size()) {
      if (++routes[f] < work.flow(f).routes.size()) {
        work.move(f, routes[f]);
        break;
      }
      routes[f] = 0;
      work.move(f, 0);
      ++f;
    }
    if (f == routes.size()) break;
    ++best.states_examined;
    const Objective obj = evaluate(work, bin);
    if (obj.better_than(best_obj)) {
      best_obj = obj;
      best.routes = routes;
      best.min_bonf = obj.min_bonf;
    }
  }
  return best;
}

OptimumResult local_search_optimum(const CongestionGame& game, Rng& rng,
                                   int restarts, int max_steps) {
  const double bin = 1 * kMbps;
  OptimumResult best;

  for (int restart = 0; restart < restarts; ++restart) {
    CongestionGame work = game;
    if (restart > 0) {
      for (std::size_t f = 0; f < work.flow_count(); ++f)
        work.move(f, static_cast<std::uint32_t>(
                         rng.next_below(work.flow(f).routes.size())));
    }
    Objective obj = evaluate(work, bin);

    for (int step = 0; step < max_steps; ++step) {
      // Steepest single-flow improvement of the *global* objective.
      bool improved = false;
      std::size_t best_f = 0;
      std::uint32_t best_r = 0;
      Objective best_candidate = obj;
      for (std::size_t f = 0; f < work.flow_count(); ++f) {
        const std::uint32_t original = work.flow(f).route;
        for (std::uint32_t r = 0; r < work.flow(f).routes.size(); ++r) {
          if (r == original) continue;
          work.move(f, r);
          ++best.states_examined;
          const Objective candidate = evaluate(work, bin);
          if (candidate.better_than(best_candidate)) {
            best_candidate = candidate;
            best_f = f;
            best_r = r;
            improved = true;
          }
        }
        work.move(f, original);
      }
      if (!improved) break;
      work.move(best_f, best_r);
      obj = best_candidate;
    }

    if (best.routes.empty() || obj.min_bonf > best.min_bonf) {
      best.min_bonf = obj.min_bonf;
      best.routes = current_routes(work);
    }
  }
  return best;
}

double nash_gap_ratio(double nash_min_bonf, const OptimumResult& optimum) {
  DCN_CHECK(optimum.min_bonf > 0);
  return std::min(1.0, nash_min_bonf / optimum.min_bonf);
}

}  // namespace dard::analysis
