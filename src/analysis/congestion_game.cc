#include "analysis/congestion_game.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace dard::analysis {

int StateVector::compare(const StateVector& other) const {
  const std::size_t n = std::max(bins.size(), other.bins.size());
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t a = k < bins.size() ? bins[k] : 0;
    const std::uint32_t b = k < other.bins.size() ? other.bins[k] : 0;
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

CongestionGame::CongestionGame(const topo::Topology& t,
                               std::vector<GameFlow> flows)
    : topo_(&t), flows_(std::move(flows)), flows_on_(t.link_count(), 0) {
  for (const GameFlow& f : flows_) {
    DCN_CHECK_MSG(!f.routes.empty(), "flow with no routes");
    DCN_CHECK(f.route < f.routes.size());
    for (const LinkId l : f.routes[f.route]) ++flows_on_[l.value()];
  }
}

double CongestionGame::link_bonf(LinkId l) const {
  const std::uint32_t n = flows_on_[l.value()];
  const Bps cap = topo_->link(l).capacity;
  return n == 0 ? cap : cap / static_cast<double>(n);
}

double CongestionGame::min_bonf() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& link : topo_->links())
    if (flows_on_[link.id.value()] > 0)
      best = std::min(best, link_bonf(link.id));
  return best;
}

double CongestionGame::flow_bonf(std::size_t f) const {
  const GameFlow& flow = flows_[f];
  double best = std::numeric_limits<double>::infinity();
  for (const LinkId l : flow.routes[flow.route])
    best = std::min(best, link_bonf(l));
  return best;
}

StateVector CongestionGame::state_vector(double delta) const {
  DCN_CHECK(delta > 0);
  StateVector sv;
  for (const auto& link : topo_->links()) {
    if (flows_on_[link.id.value()] == 0) continue;  // idle links are benign
    const auto bin =
        static_cast<std::size_t>(std::floor(link_bonf(link.id) / delta));
    if (sv.bins.size() <= bin) sv.bins.resize(bin + 1, 0);
    ++sv.bins[bin];
  }
  return sv;
}

double CongestionGame::payoff_if_moved(std::size_t f,
                                       std::uint32_t route) const {
  const GameFlow& flow = flows_[f];
  DCN_CHECK(route < flow.routes.size());
  // Counts as if f left its current route...
  auto count_on = [&](LinkId l) {
    std::uint32_t n = flows_on_[l.value()];
    for (const LinkId cur : flow.routes[flow.route])
      if (cur == l) {
        --n;
        break;
      }
    return n;
  };
  double best = std::numeric_limits<double>::infinity();
  for (const LinkId l : flow.routes[route]) {
    const std::uint32_t n = count_on(l) + 1;  // ...and joined `route`
    best = std::min(best, topo_->link(l).capacity / static_cast<double>(n));
  }
  return best;
}

bool CongestionGame::best_response(std::size_t f, double delta,
                                   std::uint32_t* out_route) const {
  const double current = flow_bonf(f);
  double best_gain = delta;
  bool found = false;
  for (std::uint32_t r = 0; r < flows_[f].routes.size(); ++r) {
    if (r == flows_[f].route) continue;
    const double gain = payoff_if_moved(f, r) - current;
    if (gain > best_gain) {
      best_gain = gain;
      *out_route = r;
      found = true;
    }
  }
  return found;
}

bool CongestionGame::is_nash(double delta) const {
  std::uint32_t unused;
  for (std::size_t f = 0; f < flows_.size(); ++f)
    if (best_response(f, delta, &unused)) return false;
  return true;
}

void CongestionGame::move(std::size_t f, std::uint32_t route) {
  GameFlow& flow = flows_[f];
  DCN_CHECK(route < flow.routes.size());
  if (route == flow.route) return;
  for (const LinkId l : flow.routes[flow.route]) {
    DCN_CHECK(flows_on_[l.value()] > 0);
    --flows_on_[l.value()];
  }
  flow.route = route;
  for (const LinkId l : flow.routes[route]) ++flows_on_[l.value()];
}

PlayResult play_until_converged(CongestionGame& game, double delta, Rng& rng,
                                std::size_t max_rounds) {
  PlayResult result;
  result.initial_min_bonf = game.min_bonf();
  // Bin width for the potential check; any positive δ works, the paper
  // suggests the acceptance threshold itself.
  const double bin = std::max(delta, 1.0);
  StateVector sv = game.state_vector(bin);

  std::vector<std::size_t> order(game.flow_count());
  std::iota(order.begin(), order.end(), 0);

  for (result.rounds = 0; result.rounds < max_rounds; ++result.rounds) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    bool moved = false;
    for (const std::size_t f : order) {
      std::uint32_t target;
      if (!game.best_response(f, delta, &target)) continue;
      game.move(f, target);
      ++result.moves;
      moved = true;
      const StateVector next = game.state_vector(bin);
      if (next.compare(sv) >= 0) result.potential_monotone = false;
      sv = next;
    }
    if (!moved) {
      result.converged = true;
      break;
    }
  }
  result.final_min_bonf = game.min_bonf();
  return result;
}

CongestionGame random_game(const topo::Topology& t, std::size_t flow_count,
                           Rng& rng) {
  const auto& hosts = t.hosts();
  DCN_CHECK(hosts.size() >= 2);
  topo::PathRepository repo(t);
  std::vector<GameFlow> flows;
  flows.reserve(flow_count);
  while (flows.size() < flow_count) {
    const NodeId src = hosts[rng.next_below(hosts.size())];
    const NodeId dst = hosts[rng.next_below(hosts.size())];
    if (src == dst) continue;
    const NodeId src_tor = t.tor_of_host(src);
    const NodeId dst_tor = t.tor_of_host(dst);
    if (src_tor == dst_tor) continue;  // single trivial route: no choices
    GameFlow f;
    for (const topo::Path& p : repo.tor_paths(src_tor, dst_tor))
      f.routes.push_back(topo::host_path(t, src, dst, p).links);
    f.route = static_cast<std::uint32_t>(rng.next_below(f.routes.size()));
    flows.push_back(std::move(f));
  }
  return CongestionGame(t, std::move(flows));
}

}  // namespace dard::analysis
