// DARD tuning knobs (paper Sections 2.5 and 3).
//
// Values the TR's text extraction dropped are restored here as named
// constants (see DESIGN.md "Defaults"): elephant threshold 1 s, query
// interval 1 s, scheduling interval 5 s + U[0,5] s, δ = 10 Mbps.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace dard::core {

struct DardConfig {
  // Monitor refresh period: each live monitor re-queries its switch set and
  // re-assembles per-path BoNF this often.
  Seconds query_interval = 1.0;

  // A scheduling round fires every schedule_base + U[0, schedule_jitter]
  // seconds per host. The jitter desynchronizes hosts; the paper credits it
  // for the absence of path oscillation (ablated by setting it to 0).
  Seconds schedule_base = 5.0;
  Seconds schedule_jitter = 5.0;

  // δ: minimum estimated BoNF improvement required to shift a flow.
  // δ=0 merely forbids moves that lower the global minimum BoNF; larger
  // values trade performance for stability.
  Bps delta = 10 * kMbps;

  std::uint64_t seed = 42;

  // Initial placement with capacity-weighted (WCMP) hashing instead of
  // plain ECMP. Algorithm 1 is already capacity-aware once a flow becomes
  // an elephant (BoNF is measured against real link capacities); this knob
  // stops mice — and elephants before their first scheduling round — from
  // hashing uniformly onto the slow columns of an asymmetric fabric. On a
  // uniform fabric WCMP is exactly ECMP, so symmetric results are
  // bit-identical either way.
  bool weighted_placement = false;

  // --- Recovery hardening (fault experiments; inert on a healthy network,
  // see DESIGN.md §11). ---

  // Query timeout/retry policy: a monitor's per-switch query exchange is
  // retried up to query_max_retries times when the exchange is lost or the
  // reply arrives later than query_timeout; each retry is a fresh accounted
  // message. Every round is therefore bounded by
  // (1 + query_max_retries) * |query set| exchanges — no round ever blocks,
  // even under 100% loss.
  std::uint32_t query_max_retries = 3;
  Seconds query_timeout = 0.05;
  // Modeled extra age accumulated per retry (the backoff spent waiting for
  // the lost reply); only shifts freshness stamps, never the virtual clock.
  Seconds retry_backoff = 0.01;

  // A switch whose queries all fail leaves its links on last-known-good
  // state, age-stamped. Links staler than this cap are distrusted and the
  // paths crossing them sit out scheduling until fresh state arrives.
  Seconds state_staleness_cap = 5.0;

  // Paths whose assembled BoNF collapses to (or below) this floor carry a
  // failed link (a failed link's effective capacity is 1 bps) and are
  // blacklisted: never a move target, and their flows are evacuated first.
  // Must sit far below any live BoNF; 1 kbps is 6 orders under a Gbps link.
  Bps blacklist_bonf_floor = 1e3;
  // A repaired path (BoNF back above the floor) is on probation for this
  // many consecutive healthy refreshes before it may receive flows again —
  // flapping links do not get their flows back on the first good reading.
  std::uint32_t probation_rounds = 2;

  // --- Partial deployment (mixed-fleet rollout; plan key "partial"). ---
  // Fraction of hosts running the adaptive daemon; the remainder place with
  // the plain ECMP hash and never monitor or move flows. The host subset is
  // drawn once from deploy_seed at start(). 1.0 = full deployment, which
  // draws nothing from the RNG and is bit-identical to pre-knob behavior.
  double deploy_fraction = 1.0;
  std::uint64_t deploy_seed = 1;
};

}  // namespace dard::core
