// DARD tuning knobs (paper Sections 2.5 and 3).
//
// Values the TR's text extraction dropped are restored here as named
// constants (see DESIGN.md "Defaults"): elephant threshold 1 s, query
// interval 1 s, scheduling interval 5 s + U[0,5] s, δ = 10 Mbps.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace dard::core {

struct DardConfig {
  // Monitor refresh period: each live monitor re-queries its switch set and
  // re-assembles per-path BoNF this often.
  Seconds query_interval = 1.0;

  // A scheduling round fires every schedule_base + U[0, schedule_jitter]
  // seconds per host. The jitter desynchronizes hosts; the paper credits it
  // for the absence of path oscillation (ablated by setting it to 0).
  Seconds schedule_base = 5.0;
  Seconds schedule_jitter = 5.0;

  // δ: minimum estimated BoNF improvement required to shift a flow.
  // δ=0 merely forbids moves that lower the global minimum BoNF; larger
  // values trade performance for stability.
  Bps delta = 10 * kMbps;

  std::uint64_t seed = 42;
};

}  // namespace dard::core
