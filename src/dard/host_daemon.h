// The per-end-host DARD daemon (paper Section 3.1).
//
// Mirrors the paper's three components:
//  * elephant detection is delegated to the substrate (on_elephant fires
//    when a flow crosses the age threshold);
//  * Monitors: one per destination ToR with live elephants, created on
//    demand and released when the last tracked elephant finishes;
//  * Flow Scheduler: every schedule_base + U[0, jitter] seconds, each
//    monitor may shift one elephant from its smallest-BoNF active path to
//    the largest-BoNF path (Algorithm 1).
// Query ticks and scheduling rounds only run while the daemon has monitors,
// so idle hosts cost nothing.
#pragma once

#include <map>
#include <memory>

#include "common/rng.h"
#include "dard/config.h"
#include "dard/monitor.h"
#include "obs/metrics.h"

namespace dard::core {

// Cached handles into the experiment's MetricsRegistry, owned by DardAgent
// and shared by every host daemon. All null when metrics are disabled, in
// which case each instrumentation site costs one null check.
struct DardCounters {
  obs::Counter* moves_proposed = nullptr;   // candidate moves passing δ
  obs::Counter* moves_accepted = nullptr;   // moves actually applied
  obs::Counter* moves_rejected = nullptr;   // candidates losing the per-host
                                            // best-gain comparison
  obs::Counter* delta_rejections = nullptr; // evaluations failing the δ test
  obs::Counter* monitor_queries = nullptr;  // switch state queries issued
  obs::Counter* query_timeouts = nullptr;   // lost or late query exchanges
  obs::Counter* query_retries = nullptr;    // re-attempts after a timeout
  obs::Counter* fallback_rounds = nullptr;  // rounds degraded to static hash
                                            // (every path blacklisted)
  obs::Gauge* blacklisted_paths = nullptr;  // live blacklisted paths, fleet-
                                            // wide across all monitors
};

class DardHostDaemon {
 public:
  DardHostDaemon(fabric::DataPlane& net,
                 const fabric::StateQueryService& service, NodeId host,
                 const DardConfig& cfg, Rng rng,
                 const DardCounters* counters = nullptr);

  // Substrate callbacks (routed through DardAgent).
  void on_elephant(const fabric::FlowView& flow);
  void on_finished(const fabric::FlowView& flow);

  // Agent-fault lifecycle (faults/injector.h via DardAgent). crash() models
  // the daemon process dying: every monitor, the tracked-elephant map, the
  // blacklist, and any pending query/round ticks are lost, and the
  // incarnation number is bumped so closures scheduled by the dead
  // incarnation no-op when they fire (the daemon object itself must outlive
  // them — the EventQueue holds raw `this`). Flows keep their last-installed
  // paths. restart() brings the daemon back with cold, empty state; the
  // agent then re-feeds still-live elephants through on_elephant.
  void crash();
  void restart();
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }

  [[nodiscard]] NodeId host() const { return host_; }
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  [[nodiscard]] std::size_t total_moves() const { return total_moves_; }
  [[nodiscard]] const PathMonitor* monitor_for(NodeId dst_tor) const;

  // Recovery-hardening telemetry, daemon-lifetime totals.
  [[nodiscard]] std::size_t query_attempts() const { return query_attempts_; }
  [[nodiscard]] std::size_t query_timeouts() const { return query_timeouts_; }
  [[nodiscard]] std::size_t query_lost() const { return query_lost_; }
  [[nodiscard]] std::size_t query_retries() const { return query_retries_; }
  [[nodiscard]] std::size_t fallback_rounds() const {
    return fallback_rounds_;
  }
  [[nodiscard]] std::size_t blacklisted_paths() const;

 private:
  void ensure_query_ticking();
  void ensure_round_scheduled();
  void query_tick();
  void run_round();
  // Reports the current incarnation to the run's Auditor (if installed) for
  // the monotonicity invariant; no-op otherwise.
  void report_incarnation() const;

  // Folds one refresh's outcome into counters and daemon totals; emits
  // nothing when metrics are disabled.
  void account_refresh(const RefreshStats& stats);
  // One monitor refresh with span tracing when a recorder is attached to
  // the data plane: collects per-switch exchanges and reports them. With no
  // recorder this is account_refresh(refresh(...)) exactly — one branch.
  void refresh_monitor(PathMonitor& monitor, NodeId dst_tor);

  fabric::DataPlane* net_;
  const fabric::StateQueryService* service_;
  NodeId host_;
  NodeId src_tor_;
  const DardConfig* cfg_;
  Rng rng_;
  const DardCounters* counters_;  // may be null

  std::map<NodeId, PathMonitor> monitors_;   // keyed by destination ToR
  std::map<FlowId, NodeId> tracked_;         // flow -> destination ToR
  bool query_ticking_ = false;
  bool round_scheduled_ = false;
  bool alive_ = true;
  // Bumped on every crash(); scheduled closures carry the incarnation that
  // scheduled them and drop themselves on mismatch, so a decision in flight
  // when the daemon died can never act on the reborn daemon's state.
  std::uint64_t incarnation_ = 1;
  std::size_t total_moves_ = 0;
  std::size_t query_attempts_ = 0;
  std::size_t query_timeouts_ = 0;
  std::size_t query_lost_ = 0;
  std::size_t query_retries_ = 0;
  std::size_t fallback_rounds_ = 0;
  // Per-refresh scratch for span tracing; only populated (and only
  // allocated) when a SpanRecorder is attached.
  std::vector<obs::QueryExchange> span_scratch_;
};

}  // namespace dard::core
