// The per-end-host DARD daemon (paper Section 3.1).
//
// Mirrors the paper's three components:
//  * elephant detection is delegated to the simulator (on_elephant fires
//    when a flow crosses the age threshold);
//  * Monitors: one per destination ToR with live elephants, created on
//    demand and released when the last tracked elephant finishes;
//  * Flow Scheduler: every schedule_base + U[0, jitter] seconds, each
//    monitor may shift one elephant from its smallest-BoNF active path to
//    the largest-BoNF path (Algorithm 1).
// Query ticks and scheduling rounds only run while the daemon has monitors,
// so idle hosts cost nothing.
#pragma once

#include <map>
#include <memory>

#include "common/rng.h"
#include "dard/config.h"
#include "dard/monitor.h"

namespace dard::core {

class DardHostDaemon {
 public:
  DardHostDaemon(flowsim::FlowSimulator& sim,
                 const fabric::StateQueryService& service, NodeId host,
                 const DardConfig& cfg, Rng rng);

  // Simulator callbacks (routed through DardAgent).
  void on_elephant(const flowsim::Flow& flow);
  void on_finished(const flowsim::Flow& flow);

  [[nodiscard]] NodeId host() const { return host_; }
  [[nodiscard]] std::size_t monitor_count() const { return monitors_.size(); }
  [[nodiscard]] std::size_t total_moves() const { return total_moves_; }
  [[nodiscard]] const PathMonitor* monitor_for(NodeId dst_tor) const;

 private:
  void ensure_query_ticking();
  void ensure_round_scheduled();
  void query_tick();
  void run_round();

  flowsim::FlowSimulator* sim_;
  const fabric::StateQueryService* service_;
  NodeId host_;
  NodeId src_tor_;
  const DardConfig* cfg_;
  Rng rng_;

  std::map<NodeId, PathMonitor> monitors_;   // keyed by destination ToR
  std::map<FlowId, NodeId> tracked_;         // flow -> destination ToR
  bool query_ticking_ = false;
  bool round_scheduled_ = false;
  std::size_t total_moves_ = 0;
};

}  // namespace dard::core
