// On-demand path monitor (paper Section 2.4).
//
// A monitor lives on a source end host and tracks the BoNF of every
// equal-cost path between its source and destination ToR switches. Instead
// of probing along each path, it queries each relevant switch once for its
// per-port state ("Path State Assembling") and assembles the replies into a
// path state vector PV; the flow vector FV counts this host's own elephants
// per path. The queried switch set is exactly the egress switches of the
// switch-to-switch links appearing on any monitored path — for fat-trees
// and Clos this reduces to the paper's four groups (source ToR, source-side
// aggregation switches, cores, destination-side aggregation switches).
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dard/config.h"
#include "fabric/data_plane.h"
#include "fabric/switch_state.h"

namespace dard::core {

// Paper's S_p: state of a path's most congested (smallest-BoNF) link.
struct PathState {
  LinkId bottleneck;
  Bps bandwidth = 0;
  std::uint32_t flow_numbers = 0;
  bool assembled = false;

  [[nodiscard]] double bonf() const {
    return flow_numbers == 0 ? bandwidth
                             : bandwidth / static_cast<double>(flow_numbers);
  }
};

// A proposed selfish move: shift one elephant off `from` onto `to`.
struct ProposedMove {
  FlowId flow;
  PathIndex from = 0;
  PathIndex to = 0;
  double estimated_gain = 0;  // estimated BoNF(to after move) - BoNF(from)
};

// What one propose() call saw, for telemetry: the worst/best paths
// considered and the outcome of the δ test. Filled even when no move is
// proposed, so traces show *why* a round stayed put.
struct RoundEvaluation {
  bool considered = false;  // had >= 2 paths, >= 1 tracked flow, and both
                            // an occupied worst path and a best path
  PathIndex from = 0;       // smallest-BoNF path this host occupies
  PathIndex to = 0;         // largest-BoNF path overall
  double from_bonf = 0;
  double to_bonf = 0;
  double estimated_gain = 0;   // est. BoNF(to with one more flow) - from_bonf
  bool passed_delta = false;   // estimated_gain > δ
};

class PathMonitor {
 public:
  PathMonitor(fabric::DataPlane& net, NodeId src_tor, NodeId dst_tor);

  [[nodiscard]] NodeId src_tor() const { return src_tor_; }
  [[nodiscard]] NodeId dst_tor() const { return dst_tor_; }
  [[nodiscard]] std::size_t path_count() const { return paths_->size(); }

  // One round of path-state assembling: query every relevant switch through
  // `service` (control messages are accounted there) and rebuild PV.
  void refresh(Seconds now, const fabric::StateQueryService& service);

  // FV maintenance, driven by the owning host daemon.
  void add_flow(FlowId flow, PathIndex path);
  void remove_flow(FlowId flow, PathIndex path);
  void record_move(FlowId flow, PathIndex from, PathIndex to);

  [[nodiscard]] bool has_flows() const { return tracked_flows_ > 0; }
  [[nodiscard]] std::size_t tracked_flows() const { return tracked_flows_; }
  [[nodiscard]] std::uint32_t flows_on(PathIndex path) const;
  [[nodiscard]] const std::vector<PathState>& path_states() const {
    return pv_;
  }

  // Paper Algorithm 1 ("selfish flow scheduling"), one round:
  //   from = the active path (FV > 0) with the smallest BoNF,
  //   to   = the path with the largest BoNF,
  //   move one flow iff BoNF(to with one more flow) - BoNF(from) > delta.
  // (The TR's pseudocode garbles which index the FV>0 guard applies to; the
  // "inactive path" discussion in Section 2.5 fixes it: a host can only
  // shift a flow *off* a path it contributes to.)
  // Ties on either side are broken uniformly at random via `rng`:
  // deterministic tie-breaking makes every host dump flows onto the same
  // first-indexed idle path and chase each other indefinitely — the same
  // herding the randomized round offsets exist to prevent.
  // `eval`, when non-null, receives what the round saw (telemetry only;
  // filling it draws nothing from `rng` and never changes the decision).
  [[nodiscard]] std::optional<ProposedMove> propose(
      Bps delta, Rng& rng, RoundEvaluation* eval = nullptr) const;

  [[nodiscard]] const std::vector<NodeId>& queried_switches() const {
    return query_set_;
  }

 private:
  NodeId src_tor_;
  NodeId dst_tor_;
  const std::vector<topo::Path>* paths_;
  std::vector<NodeId> query_set_;
  // Pre-resolved switch-switch links per path: the only state a refresh
  // reads, avoiding per-refresh reply materialization on large topologies.
  std::vector<std::vector<LinkId>> monitored_links_;
  std::vector<PathState> pv_;
  std::vector<std::vector<FlowId>> fv_;  // this host's elephants per path
  std::size_t tracked_flows_ = 0;
};

}  // namespace dard::core
