// On-demand path monitor (paper Section 2.4).
//
// A monitor lives on a source end host and tracks the BoNF of every
// equal-cost path between its source and destination ToR switches. Instead
// of probing along each path, it queries each relevant switch once for its
// per-port state ("Path State Assembling") and assembles the replies into a
// path state vector PV; the flow vector FV counts this host's own elephants
// per path. The queried switch set is exactly the egress switches of the
// switch-to-switch links appearing on any monitored path — for fat-trees
// and Clos this reduces to the paper's four groups (source ToR, source-side
// aggregation switches, cores, destination-side aggregation switches).
//
// Fault hardening (DESIGN.md §11): each switch query runs through a
// timeout + bounded-retry policy; links whose switch never answered keep
// their last-known-good state, age-stamped and distrusted past a staleness
// cap. Paths whose BoNF collapses to the failure floor are blacklisted
// (never a move target, flows evacuated first) and sit on probation for a
// few healthy refreshes after repair before they may receive flows again.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dard/config.h"
#include "fabric/data_plane.h"
#include "fabric/switch_state.h"
#include "obs/spans.h"

namespace dard::core {

// Paper's S_p: state of a path's most congested (smallest-BoNF) link.
struct PathState {
  LinkId bottleneck;
  Bps bandwidth = 0;
  std::uint32_t flow_numbers = 0;
  bool assembled = false;

  [[nodiscard]] double bonf() const {
    return flow_numbers == 0 ? bandwidth
                             : bandwidth / static_cast<double>(flow_numbers);
  }
};

// A proposed selfish move: shift one elephant off `from` onto `to`.
struct ProposedMove {
  FlowId flow;
  PathIndex from = 0;
  PathIndex to = 0;
  double estimated_gain = 0;  // estimated BoNF(to after move) - BoNF(from)
};

// What one propose() call saw, for telemetry: the worst/best paths
// considered and the outcome of the δ test. Filled even when no move is
// proposed, so traces show *why* a round stayed put.
struct RoundEvaluation {
  bool considered = false;  // had >= 2 paths, >= 1 tracked flow, and both
                            // an occupied worst path and a best path
  bool fallback = false;    // every path blacklisted: the pair degraded to
                            // ECMP-style static hashing this round
  PathIndex from = 0;       // smallest-BoNF path this host occupies
  PathIndex to = 0;         // largest-BoNF path overall
  double from_bonf = 0;
  double to_bonf = 0;
  double estimated_gain = 0;   // est. BoNF(to with one more flow) - from_bonf
  bool passed_delta = false;   // estimated_gain > δ
};

// Outcome of one refresh round under the query timeout/retry policy.
struct RefreshStats {
  std::uint32_t queries = 0;         // exchanges attempted (all accounted)
  std::uint32_t timeouts = 0;        // lost exchanges or late replies
  std::uint32_t lost = 0;            // never-delivered subset of timeouts:
                                     // no reply message hit the wire
  std::uint32_t retries = 0;         // re-attempts after a timeout
  std::uint32_t failed_switches = 0; // switches that exhausted every retry
  std::uint32_t newly_blacklisted = 0;  // paths entering the blacklist
  std::uint32_t cleared = 0;            // paths leaving it (probation done)
};

class PathMonitor {
 public:
  PathMonitor(fabric::DataPlane& net, NodeId src_tor, NodeId dst_tor);

  [[nodiscard]] NodeId src_tor() const { return src_tor_; }
  [[nodiscard]] NodeId dst_tor() const { return dst_tor_; }
  [[nodiscard]] std::size_t path_count() const { return paths_->size(); }

  // One round of path-state assembling: query every relevant switch through
  // `service` (control messages are accounted there) and rebuild PV. Each
  // switch exchange follows cfg's timeout/retry policy; a switch that
  // exhausts its retries leaves its links on last-known-good state, and
  // links staler than cfg.state_staleness_cap make their paths sit this
  // round out. Also updates the path blacklist from the assembled BoNFs.
  // `exchanges`, when non-null, is cleared and filled with one per-switch
  // QueryExchange record for span tracing (telemetry only: filling it never
  // changes the refresh outcome).
  RefreshStats refresh(Seconds now, const fabric::StateQueryService& service,
                       const DardConfig& cfg,
                       std::vector<obs::QueryExchange>* exchanges = nullptr);
  // Perfect-channel convenience overload (tests, benches): default policy,
  // identical behavior to the pre-fault-subsystem refresh.
  void refresh(Seconds now, const fabric::StateQueryService& service);

  // FV maintenance, driven by the owning host daemon.
  void add_flow(FlowId flow, PathIndex path);
  void remove_flow(FlowId flow, PathIndex path);
  void record_move(FlowId flow, PathIndex from, PathIndex to);

  [[nodiscard]] bool has_flows() const { return tracked_flows_ > 0; }
  [[nodiscard]] std::size_t tracked_flows() const { return tracked_flows_; }
  [[nodiscard]] std::uint32_t flows_on(PathIndex path) const;
  [[nodiscard]] const std::vector<PathState>& path_states() const {
    return pv_;
  }

  [[nodiscard]] bool is_blacklisted(PathIndex path) const {
    return blacklisted_[path] != 0;
  }
  [[nodiscard]] std::size_t blacklisted_count() const {
    return blacklisted_live_;
  }
  [[nodiscard]] bool all_paths_blacklisted() const {
    return !pv_.empty() && blacklisted_live_ == pv_.size();
  }

  // Paper Algorithm 1 ("selfish flow scheduling"), one round:
  //   from = the active path (FV > 0) with the smallest BoNF,
  //   to   = the path with the largest BoNF,
  //   move one flow iff BoNF(to with one more flow) - BoNF(from) > delta.
  // (The TR's pseudocode garbles which index the FV>0 guard applies to; the
  // "inactive path" discussion in Section 2.5 fixes it: a host can only
  // shift a flow *off* a path it contributes to.)
  // Blacklisted paths are never selected as `to`; when every path is
  // blacklisted the pair falls back to its static hash placement (no move,
  // eval->fallback set).
  // Ties on either side are broken uniformly at random via `rng`:
  // deterministic tie-breaking makes every host dump flows onto the same
  // first-indexed idle path and chase each other indefinitely — the same
  // herding the randomized round offsets exist to prevent.
  // `eval`, when non-null, receives what the round saw (telemetry only;
  // filling it draws nothing from `rng` and never changes the decision).
  [[nodiscard]] std::optional<ProposedMove> propose(
      Bps delta, Rng& rng, RoundEvaluation* eval = nullptr) const;

  [[nodiscard]] const std::vector<NodeId>& queried_switches() const {
    return query_set_;
  }

 private:
  NodeId src_tor_;
  NodeId dst_tor_;
  // A monitor outlives any LRU residency guarantee, so it pins its path
  // set: paths_pin_ keeps the materialized set alive across cache eviction,
  // paths_ is just the dereferenced view the hot paths index into.
  topo::PathRepository::PathSetPtr paths_pin_;
  const std::vector<topo::Path>* paths_;
  std::vector<NodeId> query_set_;

  // The unique switch-switch links any monitored path crosses ("slots"),
  // each owned by the switch (query_set_ index) that reports it, plus the
  // per-path slot lists a refresh assembles from. Pre-resolved so a refresh
  // touches no topology structures.
  std::vector<LinkId> slot_links_;
  std::vector<std::uint32_t> slot_owner_;          // slot -> query_set_ index
  std::vector<std::vector<std::uint32_t>> path_slots_;  // per path

  // Last-known-good per-slot state. fresh_at < 0 means never assembled.
  struct CachedLink {
    fabric::LinkState state;
    Seconds fresh_at = -1;
  };
  std::vector<CachedLink> cache_;
  // Per-refresh scratch (member to avoid re-allocating every round).
  std::vector<std::uint8_t> switch_ok_;
  std::vector<Seconds> switch_fresh_;

  std::vector<PathState> pv_;
  std::vector<std::vector<FlowId>> fv_;  // this host's elephants per path
  std::size_t tracked_flows_ = 0;

  std::vector<std::uint8_t> blacklisted_;   // per path
  std::vector<std::uint32_t> probation_;    // healthy refreshes still owed
  std::size_t blacklisted_live_ = 0;
};

}  // namespace dard::core
