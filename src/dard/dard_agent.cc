#include "dard/dard_agent.h"

#include "common/hash.h"

namespace dard::core {

using flowsim::Flow;
using flowsim::FlowSimulator;

void DardAgent::start(FlowSimulator& sim) {
  rng_ = std::make_unique<Rng>(cfg_.seed);
  service_ = std::make_unique<fabric::StateQueryService>(sim.link_state(),
                                                         &sim.accountant());
  daemons_.clear();
  daemons_.resize(sim.topology().node_count());

  counters_ = DardCounters{};
  if (obs::MetricsRegistry* m = sim.metrics()) {
    counters_.moves_proposed = &m->counter("dard.moves_proposed");
    counters_.moves_accepted = &m->counter("dard.moves_accepted");
    counters_.moves_rejected = &m->counter("dard.moves_rejected");
    counters_.delta_rejections = &m->counter("dard.delta_rejections");
    counters_.monitor_queries = &m->counter("dard.monitor_queries");
  }
}

PathIndex DardAgent::place(FlowSimulator& sim, const Flow& flow) {
  const auto& paths = sim.path_set(flow);
  const std::uint64_t h =
      five_tuple_hash(flow.spec.src_host.value(), flow.spec.dst_host.value(),
                      flow.spec.src_port, flow.spec.dst_port);
  return static_cast<PathIndex>(h % paths.size());
}

DardHostDaemon& DardAgent::daemon_for(FlowSimulator& sim, NodeId host) {
  auto& slot = daemons_[host.value()];
  if (!slot) {
    slot = std::make_unique<DardHostDaemon>(sim, *service_, host, cfg_,
                                            rng_->fork(host.value()),
                                            &counters_);
  }
  return *slot;
}

void DardAgent::on_elephant(FlowSimulator& sim, const Flow& flow) {
  daemon_for(sim, flow.spec.src_host).on_elephant(flow);
}

void DardAgent::on_finished(FlowSimulator& sim, const Flow& flow) {
  if (!flow.is_elephant) return;
  daemon_for(sim, flow.spec.src_host).on_finished(flow);
}

const DardHostDaemon* DardAgent::daemon(NodeId host) const {
  if (host.value() >= daemons_.size()) return nullptr;
  return daemons_[host.value()].get();
}

std::size_t DardAgent::total_moves() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->total_moves();
  return n;
}

std::size_t DardAgent::live_monitor_count() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->monitor_count();
  return n;
}

}  // namespace dard::core
