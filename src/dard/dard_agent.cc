#include "dard/dard_agent.h"

#include "common/hash.h"

namespace dard::core {

using fabric::DataPlane;
using fabric::FlowView;

void DardAgent::start(DataPlane& net) {
  rng_ = std::make_unique<Rng>(cfg_.seed);
  if (cfg_.weighted_placement) wcmp_.attach(net.topology());
  service_ = std::make_unique<fabric::StateQueryService>(net.link_state(),
                                                         &net.accountant());
  // The fault subsystem (if any) installed its degradation model on the
  // data plane before agents start; route monitor queries through it.
  service_->set_model(net.control_model());
  daemons_.clear();
  daemons_.resize(net.topology().node_count());

  counters_ = DardCounters{};
  if (obs::MetricsRegistry* m = net.metrics()) {
    counters_.moves_proposed = &m->counter("dard.moves_proposed");
    counters_.moves_accepted = &m->counter("dard.moves_accepted");
    counters_.moves_rejected = &m->counter("dard.moves_rejected");
    counters_.delta_rejections = &m->counter("dard.delta_rejections");
    counters_.monitor_queries = &m->counter("dard.monitor_queries");
    counters_.query_timeouts = &m->counter("dard.query_timeouts");
    counters_.query_retries = &m->counter("dard.query_retries");
    counters_.fallback_rounds = &m->counter("dard.fallback_rounds");
    counters_.blacklisted_paths = &m->gauge("dard.blacklisted_paths");
    net.accountant().set_message_counter(&m->counter("dard.control_msgs"));
  }
}

PathIndex DardAgent::place(DataPlane& net, const FlowView& flow) {
  const auto& paths = net.path_set(flow);
  if (cfg_.weighted_placement)
    return wcmp_.pick(flow.src_host, flow.dst_host, flow.src_port,
                      flow.dst_port, paths);
  return ecmp_path_index(flow.src_host, flow.dst_host, flow.src_port,
                         flow.dst_port, paths.size());
}

DardHostDaemon& DardAgent::daemon_for(DataPlane& net, NodeId host) {
  auto& slot = daemons_[host.value()];
  if (!slot) {
    slot = std::make_unique<DardHostDaemon>(net, *service_, host, cfg_,
                                            rng_->fork(host.value()),
                                            &counters_);
  }
  return *slot;
}

void DardAgent::on_elephant(DataPlane& net, const FlowView& flow) {
  daemon_for(net, flow.src_host).on_elephant(flow);
}

void DardAgent::on_finished(DataPlane& net, const FlowView& flow) {
  if (!flow.is_elephant) return;
  daemon_for(net, flow.src_host).on_finished(flow);
}

const DardHostDaemon* DardAgent::daemon(NodeId host) const {
  if (host.value() >= daemons_.size()) return nullptr;
  return daemons_[host.value()].get();
}

std::size_t DardAgent::total_moves() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->total_moves();
  return n;
}

std::size_t DardAgent::live_monitor_count() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->monitor_count();
  return n;
}

std::size_t DardAgent::total_query_timeouts() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_timeouts();
  return n;
}

std::size_t DardAgent::total_query_retries() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_retries();
  return n;
}

std::size_t DardAgent::total_fallback_rounds() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->fallback_rounds();
  return n;
}

std::size_t DardAgent::blacklisted_paths() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->blacklisted_paths();
  return n;
}

}  // namespace dard::core
