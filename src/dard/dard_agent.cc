#include "dard/dard_agent.h"

#include "common/hash.h"

namespace dard::core {

using fabric::DataPlane;
using fabric::FlowView;

void DardAgent::start(DataPlane& net) {
  rng_ = std::make_unique<Rng>(cfg_.seed);
  if (cfg_.weighted_placement) wcmp_.attach(net.topology());
  service_ = std::make_unique<fabric::StateQueryService>(net.link_state(),
                                                         &net.accountant());
  // The fault subsystem (if any) installed its degradation model on the
  // data plane before agents start; route monitor queries through it.
  service_->set_model(net.control_model());
  daemons_.clear();
  daemons_.resize(net.topology().node_count());

  // Partial deployment: draw the DARD-running host subset once from its own
  // seed. Full deployment leaves the bitmap empty — no RNG draws, and
  // deployed() short-circuits to true, keeping results bit-identical to a
  // run without the knob.
  deployed_.clear();
  if (cfg_.deploy_fraction < 1.0) {
    // Only host slots are meaningful; switch slots stay 0 and are never
    // queried (deployed() takes host ids).
    deployed_.assign(net.topology().node_count(), 0);
    Rng deploy_rng(cfg_.deploy_seed);
    for (const topo::Node& n : net.topology().nodes()) {
      if (n.kind != topo::NodeKind::Host) continue;
      deployed_[n.id.value()] =
          deploy_rng.uniform() < cfg_.deploy_fraction ? 1 : 0;
    }
  }

  counters_ = DardCounters{};
  if (obs::MetricsRegistry* m = net.metrics()) {
    counters_.moves_proposed = &m->counter("dard.moves_proposed");
    counters_.moves_accepted = &m->counter("dard.moves_accepted");
    counters_.moves_rejected = &m->counter("dard.moves_rejected");
    counters_.delta_rejections = &m->counter("dard.delta_rejections");
    counters_.monitor_queries = &m->counter("dard.monitor_queries");
    counters_.query_timeouts = &m->counter("dard.query_timeouts");
    counters_.query_retries = &m->counter("dard.query_retries");
    counters_.fallback_rounds = &m->counter("dard.fallback_rounds");
    counters_.blacklisted_paths = &m->gauge("dard.blacklisted_paths");
    net.accountant().set_message_counter(&m->counter("dard.control_msgs"));
  }
}

PathIndex DardAgent::place(DataPlane& net, const FlowView& flow) {
  const auto& paths = net.path_set(flow);
  // Non-deployed hosts run stock ECMP end to end — even the weighted
  // placement is the DARD rollout's, not theirs.
  if (cfg_.weighted_placement && deployed(flow.src_host))
    return wcmp_.pick(flow.src_host, flow.dst_host, flow.src_port,
                      flow.dst_port, paths);
  return ecmp_path_index(flow.src_host, flow.dst_host, flow.src_port,
                         flow.dst_port, paths.size());
}

DardHostDaemon& DardAgent::daemon_for(DataPlane& net, NodeId host) {
  auto& slot = daemons_[host.value()];
  if (!slot) {
    slot = std::make_unique<DardHostDaemon>(net, *service_, host, cfg_,
                                            rng_->fork(host.value()),
                                            &counters_);
  }
  return *slot;
}

void DardAgent::on_elephant(DataPlane& net, const FlowView& flow) {
  if (!deployed(flow.src_host)) return;
  daemon_for(net, flow.src_host).on_elephant(flow);
}

void DardAgent::on_finished(DataPlane& net, const FlowView& flow) {
  if (!flow.is_elephant || !deployed(flow.src_host)) return;
  daemon_for(net, flow.src_host).on_finished(flow);
}

void DardAgent::on_daemon_crash(DataPlane& net, NodeId host) {
  (void)net;
  // A host that never sourced an elephant has no daemon yet; nothing to
  // lose. Non-deployed hosts have no daemon either.
  DardHostDaemon* const d =
      host.value() < daemons_.size() ? daemons_[host.value()].get() : nullptr;
  if (d != nullptr && d->alive()) d->crash();
}

void DardAgent::on_daemon_restart(DataPlane& net, NodeId host) {
  DardHostDaemon* const d =
      host.value() < daemons_.size() ? daemons_[host.value()].get() : nullptr;
  if (d != nullptr && !d->alive()) d->restart();
  if (!deployed(host)) return;
  // Cold-start re-sync: walk the substrate's live flows and re-adopt the
  // elephants this host sources. Each lands in a freshly created monitor —
  // built through the ordinary StateQueryService query/retry machinery — so
  // no elephant registration is double-counted (the crashed incarnation's
  // monitors are gone, and on_elephant's tracked-map emplace dedups any
  // flow already re-adopted this incarnation).
  for (const FlowId id : net.active_flows()) {
    const FlowView view = net.flow_view(id);
    if (view.src_host != host || !view.is_elephant) continue;
    daemon_for(net, host).on_elephant(view);
  }
}

const DardHostDaemon* DardAgent::daemon(NodeId host) const {
  if (host.value() >= daemons_.size()) return nullptr;
  return daemons_[host.value()].get();
}

std::size_t DardAgent::total_moves() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->total_moves();
  return n;
}

std::size_t DardAgent::live_monitor_count() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->monitor_count();
  return n;
}

std::size_t DardAgent::total_query_attempts() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_attempts();
  return n;
}

std::size_t DardAgent::total_query_lost() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_lost();
  return n;
}

std::size_t DardAgent::total_query_timeouts() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_timeouts();
  return n;
}

std::size_t DardAgent::total_query_retries() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->query_retries();
  return n;
}

std::size_t DardAgent::total_fallback_rounds() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->fallback_rounds();
  return n;
}

std::size_t DardAgent::blacklisted_paths() const {
  std::size_t n = 0;
  for (const auto& d : daemons_)
    if (d) n += d->blacklisted_paths();
  return n;
}

std::size_t DardAgent::deployed_hosts() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < deployed_.size(); ++i)
    if (deployed_[i] != 0) ++n;
  return n;
}

}  // namespace dard::core
