// DARD as a scheduling agent over the fluid simulator.
//
// Initial placement is the paper's default routing, ECMP (five-tuple hash);
// once a flow is detected as an elephant its source host's daemon monitors
// and selfishly re-schedules it. Host daemons are created lazily on the
// first elephant a host sources.
#pragma once

#include <memory>
#include <vector>

#include "dard/host_daemon.h"
#include "flowsim/simulator.h"

namespace dard::core {

class DardAgent : public flowsim::SchedulerAgent {
 public:
  explicit DardAgent(DardConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const char* name() const override { return "DARD"; }

  void start(flowsim::FlowSimulator& sim) override;
  PathIndex place(flowsim::FlowSimulator& sim,
                  const flowsim::Flow& flow) override;
  void on_elephant(flowsim::FlowSimulator& sim,
                   const flowsim::Flow& flow) override;
  void on_finished(flowsim::FlowSimulator& sim,
                   const flowsim::Flow& flow) override;

  [[nodiscard]] const DardConfig& config() const { return cfg_; }
  [[nodiscard]] const DardHostDaemon* daemon(NodeId host) const;
  [[nodiscard]] std::size_t total_moves() const;
  [[nodiscard]] std::size_t live_monitor_count() const;

 private:
  DardHostDaemon& daemon_for(flowsim::FlowSimulator& sim, NodeId host);

  DardConfig cfg_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<fabric::StateQueryService> service_;
  std::vector<std::unique_ptr<DardHostDaemon>> daemons_;  // by node id value
  DardCounters counters_;  // shared by all daemons; null fields = disabled
};

}  // namespace dard::core
