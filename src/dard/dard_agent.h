// DARD as a substrate-neutral control agent (see fabric/data_plane.h).
//
// Initial placement is the paper's default routing, ECMP (five-tuple hash),
// or its capacity-weighted WCMP variant on asymmetric fabrics
// (DardConfig::weighted_placement); once a flow is detected as an elephant
// its source host's daemon monitors and selfishly re-schedules it. Host daemons are created lazily on the
// first elephant a host sources. The same agent — daemons, monitors,
// Algorithm 1 — runs over the fluid simulator and the packet substrate.
#pragma once

#include <memory>
#include <vector>

#include "dard/host_daemon.h"
#include "fabric/data_plane.h"
#include "topology/paths.h"

namespace dard::core {

class DardAgent : public fabric::ControlAgent {
 public:
  explicit DardAgent(DardConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const char* name() const override { return "DARD"; }

  void start(fabric::DataPlane& net) override;
  PathIndex place(fabric::DataPlane& net,
                  const fabric::FlowView& flow) override;
  void on_elephant(fabric::DataPlane& net,
                   const fabric::FlowView& flow) override;
  void on_finished(fabric::DataPlane& net,
                   const fabric::FlowView& flow) override;

  // Agent-fault hooks (faults/injector.h): crash wipes the host's daemon
  // soft state; restart cold-starts it and re-adopts still-live elephants
  // sourced at the host (fresh monitors rebuild path state through the
  // ordinary StateQueryService retry machinery, so nothing double-counts).
  void on_daemon_crash(fabric::DataPlane& net, NodeId host) override;
  void on_daemon_restart(fabric::DataPlane& net, NodeId host) override;

  [[nodiscard]] const DardConfig& config() const { return cfg_; }
  [[nodiscard]] const DardHostDaemon* daemon(NodeId host) const;
  [[nodiscard]] std::size_t total_moves() const;
  [[nodiscard]] std::size_t live_monitor_count() const;

  // Partial deployment (DardConfig::deploy_fraction): whether `host` runs
  // the adaptive daemon, and how many hosts do. Full deployment when the
  // fraction is 1.0 (the default).
  [[nodiscard]] bool deployed(NodeId host) const {
    return deployed_.empty() || deployed_[host.value()] != 0;
  }
  [[nodiscard]] std::size_t deployed_hosts() const;

  // Recovery-hardening aggregates across all daemons (DESIGN.md §11).
  [[nodiscard]] std::size_t total_query_attempts() const;
  [[nodiscard]] std::size_t total_query_lost() const;
  [[nodiscard]] std::size_t total_query_timeouts() const;
  [[nodiscard]] std::size_t total_query_retries() const;
  [[nodiscard]] std::size_t total_fallback_rounds() const;
  [[nodiscard]] std::size_t blacklisted_paths() const;

 private:
  DardHostDaemon& daemon_for(fabric::DataPlane& net, NodeId host);

  DardConfig cfg_;
  std::unique_ptr<Rng> rng_;
  topo::WeightedPathSelector wcmp_;  // initial placement, weighted mode only
  std::unique_ptr<fabric::StateQueryService> service_;
  std::vector<std::unique_ptr<DardHostDaemon>> daemons_;  // by node id value
  // Per-node deployment bitmap (by node id value); empty = everyone runs
  // DARD. Non-deployed hosts keep the plain ECMP hash for their lifetime.
  std::vector<char> deployed_;
  DardCounters counters_;  // shared by all daemons; null fields = disabled
};

}  // namespace dard::core
