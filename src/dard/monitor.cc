#include "dard/monitor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dard::core {

PathMonitor::PathMonitor(fabric::DataPlane& net, NodeId src_tor,
                         NodeId dst_tor)
    : src_tor_(src_tor),
      dst_tor_(dst_tor),
      paths_(&net.paths().tor_paths(src_tor, dst_tor)),
      pv_(paths_->size()),
      fv_(paths_->size()) {
  // Switches whose egress ports cover every switch-switch link of every
  // monitored path; plus the per-path link lists a refresh assembles from.
  std::unordered_set<NodeId> seen;
  const topo::Topology& t = net.topology();
  monitored_links_.reserve(paths_->size());
  for (const topo::Path& p : *paths_) {
    auto& links = monitored_links_.emplace_back();
    for (const LinkId l : p.links) {
      if (!t.is_switch_switch(l)) continue;
      links.push_back(l);
      const NodeId sw = t.link(l).src;
      if (seen.insert(sw).second) query_set_.push_back(sw);
    }
  }
  std::sort(query_set_.begin(), query_set_.end());
}

void PathMonitor::refresh(Seconds now,
                          const fabric::StateQueryService& service) {
  // One query/reply exchange per switch in the query set; the assembled
  // payload is read per pre-resolved path link.
  for (std::size_t i = 0; i < query_set_.size(); ++i)
    service.account_query(now);

  for (std::size_t i = 0; i < monitored_links_.size(); ++i) {
    PathState state;
    for (const LinkId l : monitored_links_[i]) {
      const fabric::LinkState ls = service.link_state(l);
      if (!state.assembled || ls.bonf() < state.bonf()) {
        state.bottleneck = ls.link;
        state.bandwidth = ls.bandwidth;
        state.flow_numbers = ls.elephant_flows;
        state.assembled = true;
      }
    }
    // Intra-ToR "paths" have no switch-switch link; they are never
    // scheduled (path_count == 1) so leave them unassembled.
    if (state.assembled) pv_[i] = state;
  }
}

void PathMonitor::add_flow(FlowId flow, PathIndex path) {
  DCN_CHECK(path < fv_.size());
  fv_[path].push_back(flow);
  ++tracked_flows_;
}

void PathMonitor::remove_flow(FlowId flow, PathIndex path) {
  DCN_CHECK(path < fv_.size());
  auto& flows = fv_[path];
  const auto it = std::find(flows.begin(), flows.end(), flow);
  DCN_CHECK_MSG(it != flows.end(), "removing untracked flow");
  flows.erase(it);
  --tracked_flows_;
}

void PathMonitor::record_move(FlowId flow, PathIndex from, PathIndex to) {
  remove_flow(flow, from);
  add_flow(flow, to);
}

std::uint32_t PathMonitor::flows_on(PathIndex path) const {
  DCN_CHECK(path < fv_.size());
  return static_cast<std::uint32_t>(fv_[path].size());
}

std::optional<ProposedMove> PathMonitor::propose(Bps delta, Rng& rng,
                                                 RoundEvaluation* eval) const {
  if (eval != nullptr) *eval = RoundEvaluation{};
  if (paths_->size() < 2 || tracked_flows_ == 0) return std::nullopt;

  // from: smallest BoNF among paths this host has elephants on;
  // to:   largest BoNF over all paths. Ties broken uniformly (reservoir
  // sampling) to avoid cross-host herding onto one path.
  constexpr double kTieEps = 1.0;  // BoNFs within 1 bps are tied
  std::optional<PathIndex> from, to;
  std::uint64_t from_ties = 0, to_ties = 0;
  for (PathIndex i = 0; i < pv_.size(); ++i) {
    if (!pv_[i].assembled) continue;
    if (!fv_[i].empty()) {
      if (!from || pv_[i].bonf() < pv_[*from].bonf() - kTieEps) {
        from = i;
        from_ties = 1;
      } else if (pv_[i].bonf() < pv_[*from].bonf() + kTieEps &&
                 rng.next_below(++from_ties) == 0) {
        from = i;
      }
    }
    if (!to || pv_[i].bonf() > pv_[*to].bonf() + kTieEps) {
      to = i;
      to_ties = 1;
    } else if (pv_[i].bonf() > pv_[*to].bonf() - kTieEps &&
               rng.next_below(++to_ties) == 0) {
      to = i;
    }
  }
  if (!from || !to || *from == *to) return std::nullopt;

  // Estimated BoNF of the target if one more elephant joins it (the paper's
  // deliberate non-overlap approximation).
  const PathState& target = pv_[*to];
  const double estimation =
      target.bandwidth / static_cast<double>(target.flow_numbers + 1);
  const double gain = estimation - pv_[*from].bonf();
  if (eval != nullptr) {
    eval->considered = true;
    eval->from = *from;
    eval->to = *to;
    eval->from_bonf = pv_[*from].bonf();
    eval->to_bonf = pv_[*to].bonf();
    eval->estimated_gain = gain;
    eval->passed_delta = gain > delta;
  }
  if (gain <= delta) return std::nullopt;

  return ProposedMove{fv_[*from].front(), *from, *to, gain};
}

}  // namespace dard::core
