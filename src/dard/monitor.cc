#include "dard/monitor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace dard::core {

PathMonitor::PathMonitor(fabric::DataPlane& net, NodeId src_tor,
                         NodeId dst_tor)
    : src_tor_(src_tor),
      dst_tor_(dst_tor),
      paths_pin_(net.paths().pinned(src_tor, dst_tor)),
      paths_(paths_pin_.get()),
      pv_(paths_->size()),
      fv_(paths_->size()),
      blacklisted_(paths_->size(), 0),
      probation_(paths_->size(), 0) {
  // Switches whose egress ports cover every switch-switch link of every
  // monitored path; plus the per-path slot lists a refresh assembles from.
  // Links shared between paths collapse to one slot so each is queried and
  // cached once per round.
  std::unordered_set<NodeId> seen;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_of;
  const topo::Topology& t = net.topology();
  path_slots_.reserve(paths_->size());
  for (const topo::Path& p : *paths_) {
    auto& slots = path_slots_.emplace_back();
    for (const LinkId l : p.links) {
      if (!t.is_switch_switch(l)) continue;
      const auto [it, inserted] =
          slot_of.emplace(l.value(), static_cast<std::uint32_t>(slot_links_.size()));
      if (inserted) slot_links_.push_back(l);
      slots.push_back(it->second);
      const NodeId sw = t.link(l).src;
      if (seen.insert(sw).second) query_set_.push_back(sw);
    }
  }
  std::sort(query_set_.begin(), query_set_.end());

  slot_owner_.resize(slot_links_.size());
  for (std::size_t s = 0; s < slot_links_.size(); ++s) {
    const NodeId sw = t.link(slot_links_[s]).src;
    const auto it = std::lower_bound(query_set_.begin(), query_set_.end(), sw);
    slot_owner_[s] = static_cast<std::uint32_t>(it - query_set_.begin());
  }
  cache_.resize(slot_links_.size());
  switch_ok_.resize(query_set_.size());
  switch_fresh_.resize(query_set_.size());
}

RefreshStats PathMonitor::refresh(Seconds now,
                                  const fabric::StateQueryService& service,
                                  const DardConfig& cfg,
                                  std::vector<obs::QueryExchange>* exchanges) {
  RefreshStats stats;
  if (exchanges != nullptr) {
    exchanges->clear();
    exchanges->reserve(query_set_.size());
  }

  // One exchange per switch, retried on loss or a late reply. Every attempt
  // is bounded, so a round costs at most (1+retries) * |query set| messages
  // and never blocks — even at 100% loss the switch just stays failed.
  for (std::size_t i = 0; i < query_set_.size(); ++i) {
    switch_ok_[i] = 0;
    obs::QueryExchange ex;
    ex.sw = query_set_[i];
    for (std::uint32_t attempt = 0; attempt <= cfg.query_max_retries;
         ++attempt) {
      ++stats.queries;
      ++ex.attempts;
      if (attempt > 0) ++stats.retries;
      const fabric::QueryAttempt qa = service.attempt_query(now);
      if (!qa.delivered) {
        ++stats.lost;
        ++ex.lost;
      }
      if (!qa.delivered || qa.reply_delay > cfg.query_timeout) {
        ++stats.timeouts;
        ++ex.timeouts;
        // A failed exchange costs the full timeout window plus the backoff
        // before the next attempt (modeled, never the virtual clock).
        ex.latency += cfg.query_timeout + cfg.retry_backoff;
        continue;
      }
      switch_ok_[i] = 1;
      ex.delivered = true;
      ex.reply_delay = qa.reply_delay;
      ex.latency += qa.reply_delay;
      // The reply reflects switch state one delay ago; waiting out earlier
      // timeouts ages it further. (Perfect channel: fresh_at == now.)
      switch_fresh_[i] =
          now - qa.reply_delay - attempt * cfg.retry_backoff;
      break;
    }
    if (switch_ok_[i] == 0) ++stats.failed_switches;
    if (exchanges != nullptr) exchanges->push_back(ex);
  }

  // Pull answered switches' port states into the slot cache; unanswered
  // switches leave their slots on last-known-good (age-stamped) state.
  for (std::size_t s = 0; s < slot_links_.size(); ++s) {
    const std::uint32_t owner = slot_owner_[s];
    if (switch_ok_[owner] == 0) continue;
    cache_[s].state = service.link_state(slot_links_[s]);
    cache_[s].fresh_at = switch_fresh_[owner];
  }

  // Assemble PV per path from the cache (first strict minimum, path order —
  // identical arithmetic to querying live). A path whose freshest available
  // state is older than the staleness cap sits this round out (unassembled)
  // rather than scheduling on fiction.
  for (std::size_t i = 0; i < path_slots_.size(); ++i) {
    PathState state;
    bool usable = !path_slots_[i].empty();
    for (const std::uint32_t s : path_slots_[i]) {
      const CachedLink& c = cache_[s];
      if (c.fresh_at < 0 || now - c.fresh_at > cfg.state_staleness_cap) {
        usable = false;
        break;
      }
      const fabric::LinkState& ls = c.state;
      if (!state.assembled || ls.bonf() < state.bonf()) {
        state.bottleneck = ls.link;
        state.bandwidth = ls.bandwidth;
        state.flow_numbers = ls.elephant_flows;
        state.assembled = true;
      }
    }
    // Intra-ToR "paths" have no switch-switch link; they are never
    // scheduled (path_count == 1) so leave them unassembled.
    if (path_slots_[i].empty()) continue;
    if (usable) {
      pv_[i] = state;
    } else {
      pv_[i].assembled = false;
    }
  }

  // Blacklist maintenance: a path reading at (or under) the failure floor
  // carries a dead link; a blacklisted path must string together
  // `probation_rounds` healthy readings before it may receive flows again.
  for (std::size_t i = 0; i < pv_.size(); ++i) {
    if (path_slots_[i].empty() || !pv_[i].assembled) continue;
    const bool dead = pv_[i].bonf() <= cfg.blacklist_bonf_floor;
    if (dead) {
      probation_[i] = cfg.probation_rounds;
      if (blacklisted_[i] == 0) {
        blacklisted_[i] = 1;
        ++blacklisted_live_;
        ++stats.newly_blacklisted;
      }
    } else if (blacklisted_[i] != 0) {
      if (probation_[i] > 0) {
        --probation_[i];
      } else {
        blacklisted_[i] = 0;
        --blacklisted_live_;
        ++stats.cleared;
      }
    }
  }
  return stats;
}

void PathMonitor::refresh(Seconds now,
                          const fabric::StateQueryService& service) {
  static const DardConfig kDefault;
  (void)refresh(now, service, kDefault);
}

void PathMonitor::add_flow(FlowId flow, PathIndex path) {
  DCN_CHECK(path < fv_.size());
  fv_[path].push_back(flow);
  ++tracked_flows_;
}

void PathMonitor::remove_flow(FlowId flow, PathIndex path) {
  DCN_CHECK(path < fv_.size());
  auto& flows = fv_[path];
  const auto it = std::find(flows.begin(), flows.end(), flow);
  DCN_CHECK_MSG(it != flows.end(), "removing untracked flow");
  flows.erase(it);
  --tracked_flows_;
}

void PathMonitor::record_move(FlowId flow, PathIndex from, PathIndex to) {
  remove_flow(flow, from);
  add_flow(flow, to);
}

std::uint32_t PathMonitor::flows_on(PathIndex path) const {
  DCN_CHECK(path < fv_.size());
  return static_cast<std::uint32_t>(fv_[path].size());
}

std::optional<ProposedMove> PathMonitor::propose(Bps delta, Rng& rng,
                                                 RoundEvaluation* eval) const {
  if (eval != nullptr) *eval = RoundEvaluation{};
  if (paths_->size() < 2 || tracked_flows_ == 0) return std::nullopt;
  if (all_paths_blacklisted()) {
    // Nowhere sane to move: degrade to the static hash placement (ECMP-like)
    // until at least one path clears probation. No RNG draws — the fallback
    // leaves the stream exactly where a healthy skip would.
    if (eval != nullptr) eval->fallback = true;
    return std::nullopt;
  }

  // from: smallest BoNF among paths this host has elephants on;
  // to:   largest BoNF over all non-blacklisted paths. Ties broken uniformly
  // (reservoir sampling) to avoid cross-host herding onto one path.
  constexpr double kTieEps = 1.0;  // BoNFs within 1 bps are tied
  std::optional<PathIndex> from, to;
  std::uint64_t from_ties = 0, to_ties = 0;
  for (PathIndex i = 0; i < pv_.size(); ++i) {
    if (!pv_[i].assembled) continue;
    if (!fv_[i].empty()) {
      if (!from || pv_[i].bonf() < pv_[*from].bonf() - kTieEps) {
        from = i;
        from_ties = 1;
      } else if (pv_[i].bonf() < pv_[*from].bonf() + kTieEps &&
                 rng.next_below(++from_ties) == 0) {
        from = i;
      }
    }
    // A blacklisted path is a legal `from` (its flows need evacuating) but
    // never a `to`.
    if (blacklisted_[i] != 0) continue;
    if (!to || pv_[i].bonf() > pv_[*to].bonf() + kTieEps) {
      to = i;
      to_ties = 1;
    } else if (pv_[i].bonf() > pv_[*to].bonf() - kTieEps &&
               rng.next_below(++to_ties) == 0) {
      to = i;
    }
  }
  if (!from || !to || *from == *to) return std::nullopt;

  // Estimated BoNF of the target if one more elephant joins it (the paper's
  // deliberate non-overlap approximation).
  const PathState& target = pv_[*to];
  const double estimation =
      target.bandwidth / static_cast<double>(target.flow_numbers + 1);
  const double gain = estimation - pv_[*from].bonf();
  if (eval != nullptr) {
    eval->considered = true;
    eval->from = *from;
    eval->to = *to;
    eval->from_bonf = pv_[*from].bonf();
    eval->to_bonf = pv_[*to].bonf();
    eval->estimated_gain = gain;
    eval->passed_delta = gain > delta;
  }
  if (gain <= delta) return std::nullopt;

  return ProposedMove{fv_[*from].front(), *from, *to, gain};
}

}  // namespace dard::core
