#include "dard/host_daemon.h"

#include "fabric/auditor.h"

namespace dard::core {

using fabric::FlowView;

DardHostDaemon::DardHostDaemon(fabric::DataPlane& net,
                               const fabric::StateQueryService& service,
                               NodeId host, const DardConfig& cfg, Rng rng,
                               const DardCounters* counters)
    : net_(&net),
      service_(&service),
      host_(host),
      src_tor_(net.topology().tor_of_host(host)),
      cfg_(&cfg),
      rng_(rng),
      counters_(counters) {}

void DardHostDaemon::account_refresh(const RefreshStats& stats) {
  query_attempts_ += stats.queries;
  query_timeouts_ += stats.timeouts;
  query_lost_ += stats.lost;
  query_retries_ += stats.retries;
  if (counters_ == nullptr) return;
  if (counters_->monitor_queries != nullptr)
    counters_->monitor_queries->add(stats.queries);
  if (counters_->query_timeouts != nullptr && stats.timeouts > 0)
    counters_->query_timeouts->add(stats.timeouts);
  if (counters_->query_retries != nullptr && stats.retries > 0)
    counters_->query_retries->add(stats.retries);
  // The gauge tracks the fleet-wide live blacklist; every daemon shares it,
  // so fold in this refresh's net change.
  if (counters_->blacklisted_paths != nullptr &&
      (stats.newly_blacklisted > 0 || stats.cleared > 0)) {
    obs::Gauge& g = *counters_->blacklisted_paths;
    g.set(g.value + stats.newly_blacklisted - stats.cleared);
  }
}

void DardHostDaemon::refresh_monitor(PathMonitor& monitor, NodeId dst_tor) {
  obs::SpanRecorder* const spans = net_->spans();
  if (spans == nullptr) {
    // The disabled path is the pre-span code exactly: no scratch, no extra
    // work beyond this one branch.
    account_refresh(monitor.refresh(net_->now(), *service_, *cfg_));
    return;
  }
  const Seconds now = net_->now();
  account_refresh(monitor.refresh(now, *service_, *cfg_, &span_scratch_));
  spans->record_refresh(now, host_, dst_tor, span_scratch_);
}

std::size_t DardHostDaemon::blacklisted_paths() const {
  std::size_t n = 0;
  for (const auto& [dst_tor, monitor] : monitors_) n += monitor.blacklisted_count();
  return n;
}

void DardHostDaemon::on_elephant(const FlowView& flow) {
  DCN_CHECK(flow.src_host == host_);
  // A dead daemon hears nothing; the flow keeps its current path until a
  // restarted incarnation re-adopts it.
  if (!alive_) return;
  // Intra-ToR elephants have a single trivial path; nothing to monitor.
  if (flow.dst_tor == src_tor_) return;

  auto it = monitors_.find(flow.dst_tor);
  if (it == monitors_.end()) {
    it = monitors_
             .emplace(flow.dst_tor, PathMonitor(*net_, src_tor_, flow.dst_tor))
             .first;
    // A fresh monitor assembles path state immediately so the next round
    // has something to act on.
    refresh_monitor(it->second, flow.dst_tor);
  }
  it->second.add_flow(flow.id, flow.path_index);
  tracked_.emplace(flow.id, flow.dst_tor);
  ensure_query_ticking();
  ensure_round_scheduled();
}

void DardHostDaemon::on_finished(const FlowView& flow) {
  const auto tracked = tracked_.find(flow.id);
  if (tracked == tracked_.end()) return;

  const auto it = monitors_.find(tracked->second);
  DCN_CHECK(it != monitors_.end());
  it->second.remove_flow(flow.id, flow.path_index);
  // Release the monitor once its last elephant drains (paper Section 2.4.1).
  if (!it->second.has_flows()) {
    // Its blacklisted paths leave with it — keep the shared gauge honest.
    if (counters_ != nullptr && counters_->blacklisted_paths != nullptr &&
        it->second.blacklisted_count() > 0) {
      obs::Gauge& g = *counters_->blacklisted_paths;
      g.set(g.value - static_cast<double>(it->second.blacklisted_count()));
    }
    monitors_.erase(it);
  }
  tracked_.erase(tracked);
}

void DardHostDaemon::crash() {
  // Stale-decision guard: pending query/round closures on the EventQueue
  // hold raw `this` plus the incarnation that scheduled them; bumping it
  // here turns every one of them into a no-op at fire time. The restart
  // does NOT bump — the reborn daemon IS this incarnation.
  ++incarnation_;
  alive_ = false;
  // The process's soft state dies with it. Its blacklisted paths leave the
  // fleet-wide gauge, same as a monitor being released.
  if (counters_ != nullptr && counters_->blacklisted_paths != nullptr) {
    const std::size_t black = blacklisted_paths();
    if (black > 0) {
      obs::Gauge& g = *counters_->blacklisted_paths;
      g.set(g.value - static_cast<double>(black));
    }
  }
  // The monitors carry the selfish-moves history and blacklist; clearing
  // them loses both. total_moves_ survives — it is experiment telemetry
  // (the RecoveryTracker samples it as a cumulative counter), not daemon
  // soft state.
  monitors_.clear();
  tracked_.clear();
  query_ticking_ = false;
  round_scheduled_ = false;
  report_incarnation();
}

void DardHostDaemon::restart() {
  DCN_CHECK_MSG(!alive_, "restarting a daemon that never crashed");
  alive_ = true;
  report_incarnation();
}

void DardHostDaemon::report_incarnation() const {
  if (fabric::Auditor* a = net_->auditor()) a->note_incarnation(host_, incarnation_);
}

void DardHostDaemon::ensure_query_ticking() {
  if (query_ticking_) return;
  query_ticking_ = true;
  net_->events().schedule(net_->now() + cfg_->query_interval,
                          [this, inc = incarnation_] {
                            if (inc != incarnation_) return;
                            query_tick();
                          });
}

void DardHostDaemon::ensure_round_scheduled() {
  if (round_scheduled_) return;
  round_scheduled_ = true;
  const Seconds wait =
      cfg_->schedule_base + (cfg_->schedule_jitter > 0
                                 ? rng_.uniform(0.0, cfg_->schedule_jitter)
                                 : 0.0);
  net_->events().schedule(net_->now() + wait, [this, inc = incarnation_] {
    if (inc != incarnation_) return;
    run_round();
  });
}

void DardHostDaemon::query_tick() {
  query_ticking_ = false;
  if (monitors_.empty()) return;
  {
    const obs::ProfileScope timed(net_->profiler(),
                                  obs::ProfileSection::MonitorRefresh);
    for (auto& [dst_tor, monitor] : monitors_)
      refresh_monitor(monitor, dst_tor);
  }
  ensure_query_ticking();
}

void DardHostDaemon::run_round() {
  round_scheduled_ = false;
  if (monitors_.empty()) return;
  // Times the whole round — propose scan, trace emission, and the winning
  // move's application — into the shared per-run profiler (null when
  // profiling is off; the scope then never reads the clock).
  const obs::ProfileScope timed(net_->profiler(),
                                obs::ProfileSection::DardRound);
  // Paper Algorithm 1: the scan runs over every monitor on the end host,
  // but the host shifts at most ONE elephant per round — the move with the
  // best estimated gain. (Letting each monitor move independently makes
  // two monitors of the same host leapfrog between their shared ToR
  // uplinks forever.)
  obs::SimObserver* const observer = net_->observer();
  const bool count =
      counters_ != nullptr && counters_->moves_proposed != nullptr;
  // Per-monitor evaluations, kept only while telemetry needs to report
  // which candidate ultimately won; unused (and unallocated) otherwise.
  std::vector<std::pair<NodeId, RoundEvaluation>> evals;
  if (observer != nullptr) evals.reserve(monitors_.size());

  PathMonitor* best_monitor = nullptr;
  std::optional<ProposedMove> best;
  std::size_t proposed = 0;
  for (auto& [dst_tor, monitor] : monitors_) {
    // The evaluation is always requested: beyond telemetry it reports when
    // the pair degraded to its static-hash fallback. Filling it draws
    // nothing from the RNG and never changes the decision.
    RoundEvaluation eval;
    const auto move = monitor.propose(cfg_->delta, rng_, &eval);
    if (observer != nullptr) evals.emplace_back(dst_tor, eval);
    if (eval.fallback) {
      ++fallback_rounds_;
      if (counters_ != nullptr && counters_->fallback_rounds != nullptr)
        counters_->fallback_rounds->add();
    }
    if (count && eval.considered && !eval.passed_delta)
      counters_->delta_rejections->add();
    if (move) ++proposed;
    if (move && (!best || move->estimated_gain > best->estimated_gain)) {
      best = move;
      best_monitor = &monitor;
    }
  }
  // Emit the round's evaluations BEFORE applying the winning move: the
  // accepted DardRound event is the *cause* of the FlowMove it triggers, and
  // causal trace order (decision first, effect after, linked by cause id) is
  // what dardscope reconstructs timelines from. Emission draws nothing from
  // the RNG and reads only monitor state, so the decision is unchanged.
  std::uint64_t accepted_cause = 0;
  if (observer != nullptr) {
    for (const auto& [dst_tor, eval] : evals) {
      if (!eval.considered) continue;
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::DardRound;
      e.time = net_->now();
      e.src_host = host_;
      e.dst_host = dst_tor;
      e.path_from = eval.from;
      e.path_to = eval.to;
      e.bonf_from = eval.from_bonf;
      e.bonf_to = eval.to_bonf;
      e.gain = eval.estimated_gain;
      e.delta_threshold = cfg_->delta;
      e.accepted = best.has_value() && best_monitor != nullptr &&
                   best_monitor->dst_tor() == dst_tor;
      e.cause_id = net_->next_cause_id();
      if (e.accepted) accepted_cause = e.cause_id;
      observer->on_dard_round(e);
    }
  }
  // Span tracing (DESIGN.md §17): the decision span records what the round
  // scanned and parents to the refresh whose state the winner consumed; the
  // move span (after the move applies, so the dard_round and flow_move it
  // references precede it in the trace) closes the query→decision→move
  // chain. One branch when no recorder is attached.
  obs::SpanRecorder* const spans = net_->spans();
  if (spans != nullptr)
    spans->record_decision(net_->now(), host_, monitors_.size(),
                           best.has_value(),
                           best_monitor != nullptr ? best_monitor->dst_tor()
                                                   : NodeId{});
  if (best) {
    if (accepted_cause != 0) net_->set_move_cause(accepted_cause);
    net_->move_flow(best->flow, best->to);
    net_->clear_move_cause();
    best_monitor->record_move(best->flow, best->from, best->to);
    ++total_moves_;
    if (spans != nullptr)
      spans->record_move(net_->now(), host_, best->flow,
                         best_monitor->dst_tor(), accepted_cause);
  }
  if (count) {
    counters_->moves_proposed->add(proposed);
    if (best) {
      counters_->moves_accepted->add();
      counters_->moves_rejected->add(proposed - 1);
    } else {
      counters_->moves_rejected->add(proposed);
    }
  }
  ensure_round_scheduled();
}

const PathMonitor* DardHostDaemon::monitor_for(NodeId dst_tor) const {
  const auto it = monitors_.find(dst_tor);
  return it == monitors_.end() ? nullptr : &it->second;
}

}  // namespace dard::core
