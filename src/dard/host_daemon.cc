#include "dard/host_daemon.h"

namespace dard::core {

using flowsim::Flow;

DardHostDaemon::DardHostDaemon(flowsim::FlowSimulator& sim,
                               const fabric::StateQueryService& service,
                               NodeId host, const DardConfig& cfg, Rng rng)
    : sim_(&sim),
      service_(&service),
      host_(host),
      src_tor_(sim.topology().tor_of_host(host)),
      cfg_(&cfg),
      rng_(rng) {}

void DardHostDaemon::on_elephant(const Flow& flow) {
  DCN_CHECK(flow.spec.src_host == host_);
  // Intra-ToR elephants have a single trivial path; nothing to monitor.
  if (flow.dst_tor == src_tor_) return;

  auto it = monitors_.find(flow.dst_tor);
  if (it == monitors_.end()) {
    it = monitors_
             .emplace(flow.dst_tor, PathMonitor(*sim_, src_tor_, flow.dst_tor))
             .first;
    // A fresh monitor assembles path state immediately so the next round
    // has something to act on.
    it->second.refresh(sim_->now(), *service_);
  }
  it->second.add_flow(flow.id, flow.path_index);
  tracked_.emplace(flow.id, flow.dst_tor);
  ensure_query_ticking();
  ensure_round_scheduled();
}

void DardHostDaemon::on_finished(const Flow& flow) {
  const auto tracked = tracked_.find(flow.id);
  if (tracked == tracked_.end()) return;

  const auto it = monitors_.find(tracked->second);
  DCN_CHECK(it != monitors_.end());
  it->second.remove_flow(flow.id, flow.path_index);
  // Release the monitor once its last elephant drains (paper Section 2.4.1).
  if (!it->second.has_flows()) monitors_.erase(it);
  tracked_.erase(tracked);
}

void DardHostDaemon::ensure_query_ticking() {
  if (query_ticking_) return;
  query_ticking_ = true;
  sim_->events().schedule(sim_->now() + cfg_->query_interval,
                          [this] { query_tick(); });
}

void DardHostDaemon::ensure_round_scheduled() {
  if (round_scheduled_) return;
  round_scheduled_ = true;
  const Seconds wait =
      cfg_->schedule_base + (cfg_->schedule_jitter > 0
                                 ? rng_.uniform(0.0, cfg_->schedule_jitter)
                                 : 0.0);
  sim_->events().schedule(sim_->now() + wait, [this] { run_round(); });
}

void DardHostDaemon::query_tick() {
  query_ticking_ = false;
  if (monitors_.empty()) return;
  for (auto& [dst_tor, monitor] : monitors_)
    monitor.refresh(sim_->now(), *service_);
  ensure_query_ticking();
}

void DardHostDaemon::run_round() {
  round_scheduled_ = false;
  if (monitors_.empty()) return;
  // Paper Algorithm 1: the scan runs over every monitor on the end host,
  // but the host shifts at most ONE elephant per round — the move with the
  // best estimated gain. (Letting each monitor move independently makes
  // two monitors of the same host leapfrog between their shared ToR
  // uplinks forever.)
  PathMonitor* best_monitor = nullptr;
  std::optional<ProposedMove> best;
  for (auto& [dst_tor, monitor] : monitors_) {
    const auto move = monitor.propose(cfg_->delta, rng_);
    if (move && (!best || move->estimated_gain > best->estimated_gain)) {
      best = move;
      best_monitor = &monitor;
    }
  }
  if (best) {
    sim_->move_flow(best->flow, best->to);
    best_monitor->record_move(best->flow, best->from, best->to);
    ++total_moves_;
  }
  ensure_round_scheduled();
}

const PathMonitor* DardHostDaemon::monitor_for(NodeId dst_tor) const {
  const auto it = monitors_.find(dst_tor);
  return it == monitors_.end() ? nullptr : &it->second;
}

}  // namespace dard::core
