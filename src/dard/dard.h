// Umbrella header: the DARD system and the substrates it runs on.
//
// Quickstart:
//   auto topo = dard::topo::build_fat_tree({.p = 8});
//   dard::flowsim::FlowSimulator sim(topo);
//   dard::core::DardAgent agent;
//   sim.set_agent(&agent);
//   for (auto& spec : dard::traffic::generate_workload(topo, workload))
//     sim.submit(spec);
//   sim.run_to_completion();
//   // sim.records() now holds every flow's transfer time and path switches.
#pragma once

#include "addressing/hierarchical.h"
#include "addressing/name_service.h"
#include "dard/config.h"
#include "dard/dard_agent.h"
#include "dard/host_daemon.h"
#include "dard/monitor.h"
#include "fabric/controller.h"
#include "fabric/switch_state.h"
#include "flowsim/simulator.h"
#include "topology/builders.h"
#include "topology/paths.h"
#include "traffic/patterns.h"
