file(REMOVE_RECURSE
  "CMakeFiles/dcn_harness.dir/experiment.cc.o"
  "CMakeFiles/dcn_harness.dir/experiment.cc.o.d"
  "libdcn_harness.a"
  "libdcn_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
