# Empty dependencies file for dcn_harness.
# This may be replaced when dependencies are built.
