file(REMOVE_RECURSE
  "libdcn_harness.a"
)
