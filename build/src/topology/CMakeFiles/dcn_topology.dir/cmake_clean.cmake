file(REMOVE_RECURSE
  "CMakeFiles/dcn_topology.dir/builders.cc.o"
  "CMakeFiles/dcn_topology.dir/builders.cc.o.d"
  "CMakeFiles/dcn_topology.dir/paths.cc.o"
  "CMakeFiles/dcn_topology.dir/paths.cc.o.d"
  "CMakeFiles/dcn_topology.dir/topology.cc.o"
  "CMakeFiles/dcn_topology.dir/topology.cc.o.d"
  "libdcn_topology.a"
  "libdcn_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
