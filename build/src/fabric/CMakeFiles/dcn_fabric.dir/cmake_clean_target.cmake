file(REMOVE_RECURSE
  "libdcn_fabric.a"
)
