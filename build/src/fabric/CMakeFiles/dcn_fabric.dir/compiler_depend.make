# Empty compiler generated dependencies file for dcn_fabric.
# This may be replaced when dependencies are built.
