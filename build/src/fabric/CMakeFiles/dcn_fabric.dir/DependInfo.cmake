
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/accounting.cc" "src/fabric/CMakeFiles/dcn_fabric.dir/accounting.cc.o" "gcc" "src/fabric/CMakeFiles/dcn_fabric.dir/accounting.cc.o.d"
  "/root/repo/src/fabric/controller.cc" "src/fabric/CMakeFiles/dcn_fabric.dir/controller.cc.o" "gcc" "src/fabric/CMakeFiles/dcn_fabric.dir/controller.cc.o.d"
  "/root/repo/src/fabric/switch_state.cc" "src/fabric/CMakeFiles/dcn_fabric.dir/switch_state.cc.o" "gcc" "src/fabric/CMakeFiles/dcn_fabric.dir/switch_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/addressing/CMakeFiles/dcn_addressing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
