file(REMOVE_RECURSE
  "CMakeFiles/dcn_fabric.dir/accounting.cc.o"
  "CMakeFiles/dcn_fabric.dir/accounting.cc.o.d"
  "CMakeFiles/dcn_fabric.dir/controller.cc.o"
  "CMakeFiles/dcn_fabric.dir/controller.cc.o.d"
  "CMakeFiles/dcn_fabric.dir/switch_state.cc.o"
  "CMakeFiles/dcn_fabric.dir/switch_state.cc.o.d"
  "libdcn_fabric.a"
  "libdcn_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
