file(REMOVE_RECURSE
  "libdcn_dard.a"
)
