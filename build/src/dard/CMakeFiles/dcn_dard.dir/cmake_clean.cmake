file(REMOVE_RECURSE
  "CMakeFiles/dcn_dard.dir/dard_agent.cc.o"
  "CMakeFiles/dcn_dard.dir/dard_agent.cc.o.d"
  "CMakeFiles/dcn_dard.dir/host_daemon.cc.o"
  "CMakeFiles/dcn_dard.dir/host_daemon.cc.o.d"
  "CMakeFiles/dcn_dard.dir/monitor.cc.o"
  "CMakeFiles/dcn_dard.dir/monitor.cc.o.d"
  "libdcn_dard.a"
  "libdcn_dard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_dard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
