# Empty dependencies file for dcn_dard.
# This may be replaced when dependencies are built.
