file(REMOVE_RECURSE
  "libdcn_baselines.a"
)
