# Empty dependencies file for dcn_baselines.
# This may be replaced when dependencies are built.
