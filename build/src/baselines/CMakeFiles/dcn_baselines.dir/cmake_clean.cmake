file(REMOVE_RECURSE
  "CMakeFiles/dcn_baselines.dir/ecmp.cc.o"
  "CMakeFiles/dcn_baselines.dir/ecmp.cc.o.d"
  "CMakeFiles/dcn_baselines.dir/hedera.cc.o"
  "CMakeFiles/dcn_baselines.dir/hedera.cc.o.d"
  "libdcn_baselines.a"
  "libdcn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
