file(REMOVE_RECURSE
  "libdcn_analysis.a"
)
