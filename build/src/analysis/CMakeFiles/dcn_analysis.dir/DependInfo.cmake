
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/congestion_game.cc" "src/analysis/CMakeFiles/dcn_analysis.dir/congestion_game.cc.o" "gcc" "src/analysis/CMakeFiles/dcn_analysis.dir/congestion_game.cc.o.d"
  "/root/repo/src/analysis/optimum.cc" "src/analysis/CMakeFiles/dcn_analysis.dir/optimum.cc.o" "gcc" "src/analysis/CMakeFiles/dcn_analysis.dir/optimum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
