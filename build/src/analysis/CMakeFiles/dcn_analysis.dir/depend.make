# Empty dependencies file for dcn_analysis.
# This may be replaced when dependencies are built.
