file(REMOVE_RECURSE
  "CMakeFiles/dcn_analysis.dir/congestion_game.cc.o"
  "CMakeFiles/dcn_analysis.dir/congestion_game.cc.o.d"
  "CMakeFiles/dcn_analysis.dir/optimum.cc.o"
  "CMakeFiles/dcn_analysis.dir/optimum.cc.o.d"
  "libdcn_analysis.a"
  "libdcn_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
