file(REMOVE_RECURSE
  "CMakeFiles/dcn_flowsim.dir/max_min.cc.o"
  "CMakeFiles/dcn_flowsim.dir/max_min.cc.o.d"
  "CMakeFiles/dcn_flowsim.dir/simulator.cc.o"
  "CMakeFiles/dcn_flowsim.dir/simulator.cc.o.d"
  "libdcn_flowsim.a"
  "libdcn_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
