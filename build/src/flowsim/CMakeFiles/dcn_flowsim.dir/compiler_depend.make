# Empty compiler generated dependencies file for dcn_flowsim.
# This may be replaced when dependencies are built.
