file(REMOVE_RECURSE
  "libdcn_flowsim.a"
)
