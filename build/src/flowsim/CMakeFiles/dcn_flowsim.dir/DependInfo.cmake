
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowsim/max_min.cc" "src/flowsim/CMakeFiles/dcn_flowsim.dir/max_min.cc.o" "gcc" "src/flowsim/CMakeFiles/dcn_flowsim.dir/max_min.cc.o.d"
  "/root/repo/src/flowsim/simulator.cc" "src/flowsim/CMakeFiles/dcn_flowsim.dir/simulator.cc.o" "gcc" "src/flowsim/CMakeFiles/dcn_flowsim.dir/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/dcn_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/addressing/CMakeFiles/dcn_addressing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
