file(REMOVE_RECURSE
  "CMakeFiles/dcn_traffic.dir/patterns.cc.o"
  "CMakeFiles/dcn_traffic.dir/patterns.cc.o.d"
  "libdcn_traffic.a"
  "libdcn_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
