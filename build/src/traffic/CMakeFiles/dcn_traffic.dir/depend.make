# Empty dependencies file for dcn_traffic.
# This may be replaced when dependencies are built.
