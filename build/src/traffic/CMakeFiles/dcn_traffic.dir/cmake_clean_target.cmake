file(REMOVE_RECURSE
  "libdcn_traffic.a"
)
