
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pktsim/network.cc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/network.cc.o" "gcc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/network.cc.o.d"
  "/root/repo/src/pktsim/routing.cc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/routing.cc.o" "gcc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/routing.cc.o.d"
  "/root/repo/src/pktsim/session.cc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/session.cc.o" "gcc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/session.cc.o.d"
  "/root/repo/src/pktsim/tcp.cc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/tcp.cc.o" "gcc" "src/pktsim/CMakeFiles/dcn_pktsim.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/dcn_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/dcn_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/addressing/CMakeFiles/dcn_addressing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
