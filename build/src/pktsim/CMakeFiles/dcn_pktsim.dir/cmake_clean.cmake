file(REMOVE_RECURSE
  "CMakeFiles/dcn_pktsim.dir/network.cc.o"
  "CMakeFiles/dcn_pktsim.dir/network.cc.o.d"
  "CMakeFiles/dcn_pktsim.dir/routing.cc.o"
  "CMakeFiles/dcn_pktsim.dir/routing.cc.o.d"
  "CMakeFiles/dcn_pktsim.dir/session.cc.o"
  "CMakeFiles/dcn_pktsim.dir/session.cc.o.d"
  "CMakeFiles/dcn_pktsim.dir/tcp.cc.o"
  "CMakeFiles/dcn_pktsim.dir/tcp.cc.o.d"
  "libdcn_pktsim.a"
  "libdcn_pktsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_pktsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
