# Empty dependencies file for dcn_pktsim.
# This may be replaced when dependencies are built.
