file(REMOVE_RECURSE
  "libdcn_pktsim.a"
)
