# Empty dependencies file for dcn_addressing.
# This may be replaced when dependencies are built.
