file(REMOVE_RECURSE
  "libdcn_addressing.a"
)
