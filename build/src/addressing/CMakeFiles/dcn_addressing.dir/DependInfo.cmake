
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addressing/address.cc" "src/addressing/CMakeFiles/dcn_addressing.dir/address.cc.o" "gcc" "src/addressing/CMakeFiles/dcn_addressing.dir/address.cc.o.d"
  "/root/repo/src/addressing/hierarchical.cc" "src/addressing/CMakeFiles/dcn_addressing.dir/hierarchical.cc.o" "gcc" "src/addressing/CMakeFiles/dcn_addressing.dir/hierarchical.cc.o.d"
  "/root/repo/src/addressing/name_service.cc" "src/addressing/CMakeFiles/dcn_addressing.dir/name_service.cc.o" "gcc" "src/addressing/CMakeFiles/dcn_addressing.dir/name_service.cc.o.d"
  "/root/repo/src/addressing/tunnel.cc" "src/addressing/CMakeFiles/dcn_addressing.dir/tunnel.cc.o" "gcc" "src/addressing/CMakeFiles/dcn_addressing.dir/tunnel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
