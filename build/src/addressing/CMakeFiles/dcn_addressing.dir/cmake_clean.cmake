file(REMOVE_RECURSE
  "CMakeFiles/dcn_addressing.dir/address.cc.o"
  "CMakeFiles/dcn_addressing.dir/address.cc.o.d"
  "CMakeFiles/dcn_addressing.dir/hierarchical.cc.o"
  "CMakeFiles/dcn_addressing.dir/hierarchical.cc.o.d"
  "CMakeFiles/dcn_addressing.dir/name_service.cc.o"
  "CMakeFiles/dcn_addressing.dir/name_service.cc.o.d"
  "CMakeFiles/dcn_addressing.dir/tunnel.cc.o"
  "CMakeFiles/dcn_addressing.dir/tunnel.cc.o.d"
  "libdcn_addressing.a"
  "libdcn_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
