# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/paths_test[1]_include.cmake")
include("/root/repo/build/tests/addressing_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/max_min_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/dard_agent_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/hedera_test[1]_include.cmake")
include("/root/repo/build/tests/game_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/pktsim_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/dard_convergence_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/tunnel_test[1]_include.cmake")
include("/root/repo/build/tests/flowlet_test[1]_include.cmake")
include("/root/repo/build/tests/optimum_test[1]_include.cmake")
