file(REMOVE_RECURSE
  "CMakeFiles/flowlet_test.dir/flowlet_test.cc.o"
  "CMakeFiles/flowlet_test.dir/flowlet_test.cc.o.d"
  "flowlet_test"
  "flowlet_test.pdb"
  "flowlet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
