# Empty dependencies file for flowlet_test.
# This may be replaced when dependencies are built.
