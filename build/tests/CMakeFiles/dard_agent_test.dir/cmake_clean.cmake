file(REMOVE_RECURSE
  "CMakeFiles/dard_agent_test.dir/dard_agent_test.cc.o"
  "CMakeFiles/dard_agent_test.dir/dard_agent_test.cc.o.d"
  "dard_agent_test"
  "dard_agent_test.pdb"
  "dard_agent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dard_agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
