# Empty compiler generated dependencies file for dard_agent_test.
# This may be replaced when dependencies are built.
