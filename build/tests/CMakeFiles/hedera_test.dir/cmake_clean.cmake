file(REMOVE_RECURSE
  "CMakeFiles/hedera_test.dir/hedera_test.cc.o"
  "CMakeFiles/hedera_test.dir/hedera_test.cc.o.d"
  "hedera_test"
  "hedera_test.pdb"
  "hedera_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hedera_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
