# Empty dependencies file for hedera_test.
# This may be replaced when dependencies are built.
