file(REMOVE_RECURSE
  "CMakeFiles/max_min_test.dir/max_min_test.cc.o"
  "CMakeFiles/max_min_test.dir/max_min_test.cc.o.d"
  "max_min_test"
  "max_min_test.pdb"
  "max_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/max_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
