
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/invariants_test.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/invariants_test.dir/invariants_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/dcn_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/dard/CMakeFiles/dcn_dard.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/dcn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dcn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pktsim/CMakeFiles/dcn_pktsim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/dcn_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/flowsim/CMakeFiles/dcn_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/dcn_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/addressing/CMakeFiles/dcn_addressing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/dcn_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
