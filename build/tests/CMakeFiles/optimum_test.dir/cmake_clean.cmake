file(REMOVE_RECURSE
  "CMakeFiles/optimum_test.dir/optimum_test.cc.o"
  "CMakeFiles/optimum_test.dir/optimum_test.cc.o.d"
  "optimum_test"
  "optimum_test.pdb"
  "optimum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
