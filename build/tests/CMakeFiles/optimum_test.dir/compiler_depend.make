# Empty compiler generated dependencies file for optimum_test.
# This may be replaced when dependencies are built.
