file(REMOVE_RECURSE
  "CMakeFiles/pktsim_test.dir/pktsim_test.cc.o"
  "CMakeFiles/pktsim_test.dir/pktsim_test.cc.o.d"
  "pktsim_test"
  "pktsim_test.pdb"
  "pktsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pktsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
