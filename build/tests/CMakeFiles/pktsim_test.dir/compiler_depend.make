# Empty compiler generated dependencies file for pktsim_test.
# This may be replaced when dependencies are built.
