# Empty dependencies file for dard_convergence_test.
# This may be replaced when dependencies are built.
