file(REMOVE_RECURSE
  "CMakeFiles/dard_convergence_test.dir/dard_convergence_test.cc.o"
  "CMakeFiles/dard_convergence_test.dir/dard_convergence_test.cc.o.d"
  "dard_convergence_test"
  "dard_convergence_test.pdb"
  "dard_convergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dard_convergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
