file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_clos_switch_stats.dir/bench_table7_clos_switch_stats.cc.o"
  "CMakeFiles/bench_table7_clos_switch_stats.dir/bench_table7_clos_switch_stats.cc.o.d"
  "bench_table7_clos_switch_stats"
  "bench_table7_clos_switch_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_clos_switch_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
