# Empty compiler generated dependencies file for bench_table7_clos_switch_stats.
# This may be replaced when dependencies are built.
