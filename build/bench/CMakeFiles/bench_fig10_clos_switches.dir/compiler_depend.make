# Empty compiler generated dependencies file for bench_fig10_clos_switches.
# This may be replaced when dependencies are built.
