file(REMOVE_RECURSE
  "CMakeFiles/dcn_benchlib.dir/bench_lib.cc.o"
  "CMakeFiles/dcn_benchlib.dir/bench_lib.cc.o.d"
  "libdcn_benchlib.a"
  "libdcn_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
