# Empty compiler generated dependencies file for dcn_benchlib.
# This may be replaced when dependencies are built.
