file(REMOVE_RECURSE
  "libdcn_benchlib.a"
)
