# Empty compiler generated dependencies file for bench_gap_to_optimal.
# This may be replaced when dependencies are built.
