file(REMOVE_RECURSE
  "CMakeFiles/bench_gap_to_optimal.dir/bench_gap_to_optimal.cc.o"
  "CMakeFiles/bench_gap_to_optimal.dir/bench_gap_to_optimal.cc.o.d"
  "bench_gap_to_optimal"
  "bench_gap_to_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gap_to_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
