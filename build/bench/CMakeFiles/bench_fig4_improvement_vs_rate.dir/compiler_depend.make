# Empty compiler generated dependencies file for bench_fig4_improvement_vs_rate.
# This may be replaced when dependencies are built.
