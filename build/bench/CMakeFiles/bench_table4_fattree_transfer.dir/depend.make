# Empty dependencies file for bench_table4_fattree_transfer.
# This may be replaced when dependencies are built.
