# Empty dependencies file for bench_ablation_dard_params.
# This may be replaced when dependencies are built.
