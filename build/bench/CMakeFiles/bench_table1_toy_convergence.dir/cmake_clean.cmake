file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_toy_convergence.dir/bench_table1_toy_convergence.cc.o"
  "CMakeFiles/bench_table1_toy_convergence.dir/bench_table1_toy_convergence.cc.o.d"
  "bench_table1_toy_convergence"
  "bench_table1_toy_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_toy_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
