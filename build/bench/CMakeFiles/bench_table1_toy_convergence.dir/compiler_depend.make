# Empty compiler generated dependencies file for bench_table1_toy_convergence.
# This may be replaced when dependencies are built.
