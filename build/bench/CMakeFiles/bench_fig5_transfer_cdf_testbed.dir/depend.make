# Empty dependencies file for bench_fig5_transfer_cdf_testbed.
# This may be replaced when dependencies are built.
