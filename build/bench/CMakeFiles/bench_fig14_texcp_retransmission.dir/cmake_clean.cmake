file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_texcp_retransmission.dir/bench_fig14_texcp_retransmission.cc.o"
  "CMakeFiles/bench_fig14_texcp_retransmission.dir/bench_fig14_texcp_retransmission.cc.o.d"
  "bench_fig14_texcp_retransmission"
  "bench_fig14_texcp_retransmission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_texcp_retransmission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
