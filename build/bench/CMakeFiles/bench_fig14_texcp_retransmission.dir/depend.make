# Empty dependencies file for bench_fig14_texcp_retransmission.
# This may be replaced when dependencies are built.
