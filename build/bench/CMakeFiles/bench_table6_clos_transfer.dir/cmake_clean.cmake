file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_clos_transfer.dir/bench_table6_clos_transfer.cc.o"
  "CMakeFiles/bench_table6_clos_transfer.dir/bench_table6_clos_transfer.cc.o.d"
  "bench_table6_clos_transfer"
  "bench_table6_clos_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_clos_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
