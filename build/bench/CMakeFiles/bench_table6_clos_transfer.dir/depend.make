# Empty dependencies file for bench_table6_clos_transfer.
# This may be replaced when dependencies are built.
