# Empty compiler generated dependencies file for bench_fig6_path_switch_testbed.
# This may be replaced when dependencies are built.
