file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_path_switch_testbed.dir/bench_fig6_path_switch_testbed.cc.o"
  "CMakeFiles/bench_fig6_path_switch_testbed.dir/bench_fig6_path_switch_testbed.cc.o.d"
  "bench_fig6_path_switch_testbed"
  "bench_fig6_path_switch_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_path_switch_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
