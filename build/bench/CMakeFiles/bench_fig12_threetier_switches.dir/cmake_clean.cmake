file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_threetier_switches.dir/bench_fig12_threetier_switches.cc.o"
  "CMakeFiles/bench_fig12_threetier_switches.dir/bench_fig12_threetier_switches.cc.o.d"
  "bench_fig12_threetier_switches"
  "bench_fig12_threetier_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_threetier_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
