# Empty dependencies file for bench_fig12_threetier_switches.
# This may be replaced when dependencies are built.
