# Empty compiler generated dependencies file for bench_fig8_fattree_switches.
# This may be replaced when dependencies are built.
