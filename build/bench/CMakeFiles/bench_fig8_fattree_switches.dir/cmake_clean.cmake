file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fattree_switches.dir/bench_fig8_fattree_switches.cc.o"
  "CMakeFiles/bench_fig8_fattree_switches.dir/bench_fig8_fattree_switches.cc.o.d"
  "bench_fig8_fattree_switches"
  "bench_fig8_fattree_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fattree_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
