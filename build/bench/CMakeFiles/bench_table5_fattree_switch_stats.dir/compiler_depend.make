# Empty compiler generated dependencies file for bench_table5_fattree_switch_stats.
# This may be replaced when dependencies are built.
