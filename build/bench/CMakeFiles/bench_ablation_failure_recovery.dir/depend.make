# Empty dependencies file for bench_ablation_failure_recovery.
# This may be replaced when dependencies are built.
