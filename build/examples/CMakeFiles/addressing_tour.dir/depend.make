# Empty dependencies file for addressing_tour.
# This may be replaced when dependencies are built.
