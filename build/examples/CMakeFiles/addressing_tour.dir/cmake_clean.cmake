file(REMOVE_RECURSE
  "CMakeFiles/addressing_tour.dir/addressing_tour.cc.o"
  "CMakeFiles/addressing_tour.dir/addressing_tour.cc.o.d"
  "addressing_tour"
  "addressing_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addressing_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
