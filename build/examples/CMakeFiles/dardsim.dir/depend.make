# Empty dependencies file for dardsim.
# This may be replaced when dependencies are built.
