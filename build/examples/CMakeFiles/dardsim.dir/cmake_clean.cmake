file(REMOVE_RECURSE
  "CMakeFiles/dardsim.dir/dardsim.cc.o"
  "CMakeFiles/dardsim.dir/dardsim.cc.o.d"
  "dardsim"
  "dardsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dardsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
