file(REMOVE_RECURSE
  "CMakeFiles/clos_datacenter.dir/clos_datacenter.cc.o"
  "CMakeFiles/clos_datacenter.dir/clos_datacenter.cc.o.d"
  "clos_datacenter"
  "clos_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clos_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
