# Empty compiler generated dependencies file for clos_datacenter.
# This may be replaced when dependencies are built.
