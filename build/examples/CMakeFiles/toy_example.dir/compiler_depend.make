# Empty compiler generated dependencies file for toy_example.
# This may be replaced when dependencies are built.
