file(REMOVE_RECURSE
  "CMakeFiles/toy_example.dir/toy_example.cc.o"
  "CMakeFiles/toy_example.dir/toy_example.cc.o.d"
  "toy_example"
  "toy_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
