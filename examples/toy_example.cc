// The paper's Figure 1 / Table 1 walk-through, reproduced on the real
// machinery: three elephant flows on a p=4 fat-tree all start on the paths
// through core 1; selfish rounds shift them until the minimum BoNF cannot
// be improved, reaching a Nash equilibrium after a couple of rounds.
//
// This uses the analysis module's congestion game, which plays the rounds
// synchronously so the per-round vectors can be printed like Table 1.
#include <cstdio>

#include "analysis/congestion_game.h"
#include "topology/builders.h"
#include "topology/paths.h"

using namespace dard;

namespace {

analysis::GameFlow make_flow(const topo::Topology& t, topo::PathRepository& repo,
                             NodeId src, NodeId dst, std::uint32_t route) {
  analysis::GameFlow f;
  for (const auto& p : repo.tor_paths(t.tor_of_host(src), t.tor_of_host(dst)))
    f.routes.push_back(topo::host_path(t, src, dst, p).links);
  f.route = route;
  return f;
}

void print_state(const analysis::CongestionGame& game, const char* names[3]) {
  for (std::size_t f = 0; f < game.flow_count(); ++f) {
    std::printf("  %-10s path_%u  BoNF vector [", names[f],
                game.flow(f).route);
    for (std::uint32_t r = 0; r < game.flow(f).routes.size(); ++r) {
      const double payoff = r == game.flow(f).route
                                ? game.flow_bonf(f)
                                : game.payoff_if_moved(f, r);
      std::printf("%s%4.2f", r ? ", " : "", payoff / kGbps);
    }
    std::printf("] Gbps\n");
  }
  std::printf("  global minimum BoNF: %.2f Gbps\n", game.min_bonf() / kGbps);
}

}  // namespace

int main() {
  const topo::Topology t = topo::build_fat_tree({.p = 4});
  topo::PathRepository repo(t);

  // Figure 1's three flows (adapted to our host numbering): all initially
  // cross core 1 (path index 0).
  const char* names[3] = {"E11->E21", "E13->E24", "E32->E23"};
  std::vector<analysis::GameFlow> flows;
  flows.push_back(make_flow(t, repo, t.hosts()[0], t.hosts()[4], 0));
  flows.push_back(make_flow(t, repo, t.hosts()[2], t.hosts()[7], 0));
  flows.push_back(make_flow(t, repo, t.hosts()[10], t.hosts()[6], 0));
  analysis::CongestionGame game(t, std::move(flows));

  std::printf("Round 0 (all flows through core 1, as in Figure 1a):\n");
  print_state(game, names);

  // Selfish rounds: each flow in turn takes its best improving move,
  // exactly one move per source-destination pair per round.
  const double delta = 1 * kMbps;
  for (int round = 1; round <= 5; ++round) {
    bool moved = false;
    for (std::size_t f = 0; f < game.flow_count(); ++f) {
      std::uint32_t target;
      if (game.best_response(f, delta, &target)) {
        std::printf("\nRound %d: %s shifts path_%u -> path_%u\n", round,
                    names[f], game.flow(f).route, target);
        game.move(f, target);
        moved = true;
      }
    }
    if (!moved) {
      std::printf("\nRound %d: no flow can improve — Nash equilibrium.\n",
                  round);
      break;
    }
    print_state(game, names);
  }

  std::printf("\nConverged: every link carries at most one elephant; the\n"
              "scheduling process stopped in finitely many rounds "
              "(Theorem 2).\n");
  return game.is_nash(delta) ? 0 : 1;
}
