// dardscope — offline trace-analysis toolkit for dardsim runs (DESIGN.md
// §12). Loads a --run-dir (manifest + trace + metrics + samples) or a bare
// JSONL trace and answers the questions the raw artifacts only imply: what
// happened to each flow and why (causal decision tracing), how fast DARD
// converged and whether it oscillated, how much the paths churned, how hot
// the links ran, what the control plane cost — and, for two runs, what
// changed between them.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "scope/live.h"
#include "scope/report.h"

using namespace dard;

namespace {

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dardscope <subcommand> [options]\n"
      "\n"
      "subcommands:\n"
      "  report RUN            analyze one run: flow timelines, causal-link\n"
      "                        audit, convergence diagnostics, path churn,\n"
      "                        link utilization, control overhead\n"
      "  flow RUN FLOW_ID      one flow's timeline in detail, each move\n"
      "                        annotated with the round that caused it\n"
      "  diff RUN_A RUN_B      A/B comparison: metric deltas and per-flow\n"
      "                        completion-time regressions\n"
      "  spans RUN             control-plane span report (dardsim --spans):\n"
      "                        per-daemon span activity, slowest\n"
      "                        refresh->move chains, control-byte hotlinks;\n"
      "                        exits 1 on any dangling span id\n"
      "  live RUN              tail a run that is still being written and\n"
      "                        refresh the report metrics incrementally;\n"
      "                        exits when the run's manifest.json lands\n"
      "\n"
      "RUN is a directory written by dardsim --run-dir (preferred; all\n"
      "analyses available) or a bare trace.jsonl (trace-only analyses).\n"
      "\n"
      "options:\n"
      "  --md=FILE             additionally write the report as markdown\n"
      "  --window=K            oscillation window in moves (default 4)\n"
      "  --top=N               regressions to list in diff (default 10)\n"
      "\n"
      "live options:\n"
      "  --once                one pass over what exists now, then exit 0\n"
      "  --interval=S          poll/refresh period in wall seconds "
      "(default 1)\n"
      "  --summary-out=FILE    append one summary JSON line per refresh\n"
      "  --help                show this message\n");
}

bool parse_size(const char* v, std::size_t* out) {
  if (v == nullptr || *v == '\0' || *v == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = static_cast<std::size_t>(parsed);
  return true;
}

struct Options {
  std::string subcommand;
  std::vector<std::string> positional;
  std::string md_path;
  std::size_t window = 4;
  std::size_t top = 10;
  bool once = false;
  double interval = 1.0;
  std::string summary_out;
  bool help = false;
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) &&
                     arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--md=")) {
      opt->md_path = v;
    } else if (const char* v = value("--window=")) {
      if (!parse_size(v, &opt->window) || opt->window == 0) {
        std::fprintf(stderr,
                     "invalid --window: %s (valid: an integer >= 1)\n", v);
        return false;
      }
    } else if (const char* v = value("--top=")) {
      if (!parse_size(v, &opt->top)) {
        std::fprintf(stderr,
                     "invalid --top: %s (valid: a non-negative integer)\n",
                     v);
        return false;
      }
    } else if (const char* v = value("--interval=")) {
      char* end = nullptr;
      errno = 0;
      opt->interval = std::strtod(v, &end);
      if (errno != 0 || end == nullptr || *end != '\0' ||
          opt->interval <= 0) {
        std::fprintf(stderr,
                     "invalid --interval: %s (valid: a number > 0)\n", v);
        return false;
      }
    } else if (const char* v = value("--summary-out=")) {
      opt->summary_out = v;
    } else if (arg == "--once") {
      opt->once = true;
    } else if (arg == "--help" || arg == "-h") {
      opt->help = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg.c_str());
      print_usage(stderr);
      return false;
    } else if (opt->subcommand.empty()) {
      opt->subcommand = arg;
    } else {
      opt->positional.push_back(arg);
    }
  }
  return true;
}

bool load_or_die(const std::string& path, scope::RunData* run) {
  std::string error;
  if (!scope::load_run(path, run, &error)) {
    std::fprintf(stderr, "dardscope: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Opens --md output; returns false (with a message) when unwritable.
bool write_md(const std::string& path,
              const std::function<void(std::ostream&)>& render) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open markdown file: %s\n", path.c_str());
    return false;
  }
  render(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help || opt.subcommand.empty()) {
    print_usage(opt.help ? stdout : stderr);
    return opt.help ? 0 : 2;
  }

  if (opt.subcommand == "report") {
    if (opt.positional.size() != 1) {
      std::fprintf(stderr, "usage: dardscope report RUN [--md=FILE]\n");
      return 2;
    }
    scope::RunData run;
    if (!load_or_die(opt.positional[0], &run)) return 1;
    const auto report = scope::build_report(run, opt.window);
    scope::write_text(std::cout, report);
    if (!opt.md_path.empty() &&
        !write_md(opt.md_path,
                  [&](std::ostream& os) { scope::write_markdown(os, report); }))
      return 1;
    // A broken causal chain means the trace contradicts itself; make the
    // run fail loudly so CI catches it.
    return report.causes.clean() ? 0 : 1;
  }

  if (opt.subcommand == "flow") {
    std::size_t flow = 0;
    if (opt.positional.size() != 2 ||
        !parse_size(opt.positional[1].c_str(), &flow)) {
      std::fprintf(stderr, "usage: dardscope flow RUN FLOW_ID\n");
      return 2;
    }
    scope::RunData run;
    if (!load_or_die(opt.positional[0], &run)) return 1;
    const auto report = scope::build_report(run, opt.window);
    if (!scope::write_flow_text(std::cout, report,
                                static_cast<std::uint32_t>(flow))) {
      std::fprintf(stderr, "flow %zu does not appear in %s\n", flow,
                   opt.positional[0].c_str());
      return 1;
    }
    return 0;
  }

  if (opt.subcommand == "diff") {
    if (opt.positional.size() != 2) {
      std::fprintf(stderr, "usage: dardscope diff RUN_A RUN_B [--md=FILE]\n");
      return 2;
    }
    scope::RunData a;
    scope::RunData b;
    if (!load_or_die(opt.positional[0], &a) ||
        !load_or_die(opt.positional[1], &b))
      return 1;
    const auto diff = scope::diff_runs(a, b, opt.top);
    scope::write_diff_text(std::cout, a, b, diff);
    if (!opt.md_path.empty() &&
        !write_md(opt.md_path, [&](std::ostream& os) {
          scope::write_diff_markdown(os, a, b, diff);
        }))
      return 1;
    return 0;
  }

  if (opt.subcommand == "spans") {
    if (opt.positional.size() != 1) {
      std::fprintf(stderr,
                   "usage: dardscope spans RUN [--md=FILE] [--top=N]\n");
      return 2;
    }
    scope::RunData run;
    if (!load_or_die(opt.positional[0], &run)) return 1;
    const auto spans = scope::build_spans_report(run, opt.top);
    scope::write_spans_text(std::cout, spans);
    if (!opt.md_path.empty() &&
        !write_md(opt.md_path, [&](std::ostream& os) {
          scope::write_spans_markdown(os, spans);
        }))
      return 1;
    // A dangling span id means the causal chain contradicts itself; fail
    // loudly so CI catches a broken emitter.
    return spans.audit.clean() ? 0 : 1;
  }

  if (opt.subcommand == "live") {
    if (opt.positional.size() != 1) {
      std::fprintf(stderr,
                   "usage: dardscope live RUN [--once] [--interval=S] "
                   "[--summary-out=FILE] [--window=K]\n");
      return 2;
    }
    scope::LiveOptions live;
    live.path = opt.positional[0];
    live.once = opt.once;
    live.interval_s = opt.interval;
    live.window = opt.window;
    live.summary_out = opt.summary_out;
    // Clear-and-redraw only when a human is watching and the view refreshes.
    live.ansi = !opt.once && isatty(fileno(stdout)) != 0;
    return scope::run_live(live, std::cout);
  }

  std::fprintf(stderr,
               "unknown subcommand: %s (valid: report, flow, diff, spans, "
               "live)\n",
               opt.subcommand.c_str());
  return 2;
}
