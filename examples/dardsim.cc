// dardsim — command-line driver for the simulator: pick a topology, a
// traffic pattern and a scheduler, get the paper's metrics (and optionally
// a CSV of per-flow records) without writing any code.
//
//   dardsim [--topo=fattree|clos|threetier] [--size=N] [--pattern=random|
//           staggered|stride] [--scheduler=ecmp|pvlb|dard|hedera]
//           [--rate=F] [--duration=S] [--seed=N] [--csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "topology/builders.h"

using namespace dard;

namespace {

struct Options {
  std::string topo = "fattree";
  int size = 8;  // p for fat-tree, D for Clos; ignored for threetier
  std::string pattern = "stride";
  std::string scheduler = "dard";
  double rate = 1.0;
  double duration = 10.0;
  std::uint64_t seed = 1;
  bool csv = false;
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) &&
                     arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    if (const char* v = value("--topo=")) {
      opt->topo = v;
    } else if (const char* v = value("--size=")) {
      opt->size = std::atoi(v);
    } else if (const char* v = value("--pattern=")) {
      opt->pattern = v;
    } else if (const char* v = value("--scheduler=")) {
      opt->scheduler = v;
    } else if (const char* v = value("--rate=")) {
      opt->rate = std::atof(v);
    } else if (const char* v = value("--duration=")) {
      opt->duration = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      opt->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--csv") {
      opt->csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;

  topo::Topology network;
  if (opt.topo == "fattree") {
    network = topo::build_fat_tree({.p = opt.size});
  } else if (opt.topo == "clos") {
    network = topo::build_clos(
        {.d_i = opt.size, .d_a = opt.size, .hosts_per_tor = 4});
  } else if (opt.topo == "threetier") {
    network = topo::build_three_tier({});
  } else {
    std::fprintf(stderr, "unknown topology: %s\n", opt.topo.c_str());
    return 2;
  }

  harness::ExperimentConfig cfg;
  if (opt.pattern == "random") {
    cfg.workload.pattern.kind = traffic::PatternKind::Random;
  } else if (opt.pattern == "staggered") {
    cfg.workload.pattern.kind = traffic::PatternKind::Staggered;
  } else if (opt.pattern == "stride") {
    cfg.workload.pattern.kind = traffic::PatternKind::Stride;
  } else {
    std::fprintf(stderr, "unknown pattern: %s\n", opt.pattern.c_str());
    return 2;
  }
  if (opt.scheduler == "ecmp") {
    cfg.scheduler = harness::SchedulerKind::Ecmp;
  } else if (opt.scheduler == "pvlb") {
    cfg.scheduler = harness::SchedulerKind::Pvlb;
  } else if (opt.scheduler == "dard") {
    cfg.scheduler = harness::SchedulerKind::Dard;
  } else if (opt.scheduler == "hedera") {
    cfg.scheduler = harness::SchedulerKind::Hedera;
  } else {
    std::fprintf(stderr, "unknown scheduler: %s\n", opt.scheduler.c_str());
    return 2;
  }
  cfg.workload.mean_interarrival = 1.0 / opt.rate;
  cfg.workload.duration = opt.duration;
  cfg.workload.seed = opt.seed;

  const auto result = harness::run_experiment(network, cfg);

  if (opt.csv) {
    std::printf("metric,value\n");
    std::printf("scheduler,%s\n", result.scheduler.c_str());
    std::printf("flows,%zu\n", result.flows);
    std::printf("avg_transfer_s,%.4f\n", result.avg_transfer_time);
    std::printf("p50_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.5));
    std::printf("p90_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.9));
    std::printf("p99_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.99));
    std::printf("path_switches_p90,%.0f\n",
                result.path_switch_percentile(0.9));
    std::printf("path_switches_max,%.0f\n", result.max_path_switches());
    std::printf("peak_elephants,%zu\n", result.peak_elephants);
    std::printf("control_bytes,%llu\n",
                static_cast<unsigned long long>(result.control_bytes));
    std::printf("reroutes,%zu\n", result.reroutes);
  } else {
    std::printf("%s on %s (%zu hosts), %s pattern, %.2f flows/s/host for "
                "%.0fs\n",
                result.scheduler.c_str(), opt.topo.c_str(),
                network.hosts().size(), opt.pattern.c_str(), opt.rate,
                opt.duration);
    std::printf("  flows completed:    %zu\n", result.flows);
    std::printf("  avg transfer time:  %.2f s  (p50 %.2f, p90 %.2f, p99 "
                "%.2f)\n",
                result.avg_transfer_time,
                result.transfer_times.percentile(0.5),
                result.transfer_times.percentile(0.9),
                result.transfer_times.percentile(0.99));
    std::printf("  path switches p90:  %.0f (max %.0f)\n",
                result.path_switch_percentile(0.9),
                result.max_path_switches());
    std::printf("  peak elephants:     %zu\n", result.peak_elephants);
    std::printf("  control traffic:    %.1f KB/s mean, %.1f KB/s peak\n",
                result.control_mean_rate / 1000.0,
                result.control_peak_rate / 1000.0);
    std::printf("  reroutes:           %zu\n", result.reroutes);
  }
  return 0;
}
