// dardsim — command-line driver for the simulator: pick a topology, a
// traffic pattern and a scheduler, get the paper's metrics (and optionally
// a CSV of per-flow records) without writing any code. Telemetry flags
// stream a structured JSONL event trace, a metrics CSV and link-utilization
// / aggregate time series for offline plotting (see DESIGN.md
// "Observability").
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fabric/wire.h"
#include "harness/experiment.h"
#include "harness/manifest.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "topology/builders.h"

using namespace dard;

namespace {

constexpr const char* kTopos = "fattree, clos, threetier, leafspine";
constexpr const char* kPatterns = "random, staggered, stride";
constexpr const char* kSchedulers = "ecmp, wcmp, pvlb, dard, hedera, texcp";
constexpr const char* kSubstrates = "fluid, packet";
constexpr const char* kFaultPresets =
    "link-flap, switch-outage, lossy-control, chaos, agent-churn";

// Numeric flag parsing in the valid-choice error style: the whole value
// must parse (no trailing garbage, no empty string) and land in range, or
// the caller prints what would have been accepted and exits. atoi/atof
// silently turning "abc" into 0 is exactly the bug class these replace.
bool parse_double(const char* v, double* out) {
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool parse_u64(const char* v, std::uint64_t* out) {
  if (v == nullptr || *v == '\0' || *v == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool parse_long(const char* v, long* out) {
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

// Comma-separated positive Gbps values ("10,40,40") -> capacities in bps.
bool parse_gbps_list(const char* v, std::vector<Bps>* out) {
  if (v == nullptr || *v == '\0') return false;
  out->clear();
  const std::string s(v);
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    double gbps = 0;
    if (!parse_double(item.c_str(), &gbps) || gbps <= 0) return false;
    out->push_back(gbps * kGbps);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !out->empty();
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: dardsim [options]\n"
               "\n"
               "simulation options:\n"
               "  --topo=NAME          topology: %s (default fattree)\n"
               "  --size=N             p for fat-tree, D for Clos; ignored "
               "for threetier (default 8)\n"
               "  --pattern=NAME       traffic pattern: %s (default stride)\n"
               "  --scheduler=NAME     scheduler: %s (default dard;\n"
               "                       texcp needs --substrate=packet)\n"
               "  --substrate=NAME     simulation substrate: %s (default "
               "fluid).\n"
               "                       packet runs TCP New Reno over "
               "drop-tail queues\n"
               "                       with the same scheduler stack; "
               "control intervals\n"
               "                       tighten to second-scale transfers\n"
               "  --flow-mb=F          transfer size in MiB (default 128; "
               "use a few MiB\n"
               "                       to keep packet runs fast)\n"
               "  --rate=F             flows per second per host (default 1)\n"
               "  --duration=S         workload generation window in seconds "
               "(default 10)\n"
               "  --seed=N             workload / scheduler seed (default 1)\n"
               "  --replicas=K         run K replicas with seeds N..N+K-1 and\n"
               "                       report per-replica + aggregate numbers\n"
               "  --jobs=J             worker threads for the replicas "
               "(default 1,\n"
               "                       0 = all cores; results are identical "
               "for any J)\n"
               "  --realloc-threads=T  worker threads for the sharded "
               "max-min solve\n"
               "                       (default 1 = serial; results are "
               "bit-identical\n"
               "                       for any T; fluid substrate only)\n"
               "\n"
               "asymmetric-fabric options (fattree and leafspine):\n"
               "  --weighted           capacity-aware path choice for any "
               "scheduler\n"
               "                       (ecmp becomes wcmp; a no-op on "
               "uniform fabrics)\n"
               "  --oversub=F          fat-tree aggregation oversubscription "
               "F:1 — each agg\n"
               "                       switch keeps round((p/2)/F) of its "
               "p/2 uplinks\n"
               "  --speed-skew=F       alternate fast uplink columns at F x "
               "the base\n"
               "                       capacity (fat-tree cores / leaf-spine "
               "spines)\n"
               "  --stripped-pods=N    first N pods (fat-tree) / leaves "
               "(leafspine) keep\n"
               "                       only --stripped-uplinks of their "
               "uplinks\n"
               "  --stripped-uplinks=M uplinks a stripped pod/leaf keeps "
               "(default 1)\n"
               "  --spine-mix=LIST     leaf-spine per-spine capacities as "
               "comma-separated\n"
               "                       Gbps values, cycled over spines "
               "(e.g. 10,40)\n"
               "\n"
               "fault injection options:\n"
               "  --faults=SPEC        inject a fault plan: a preset (%s)\n"
               "                       or a path to a JSON plan file; adds "
               "recovery metrics\n"
               "                       to the output (not with texcp). "
               "--faults=list prints\n"
               "                       every preset with a one-line "
               "description\n"
               "  --audit              run the fabric::Auditor alongside the "
               "simulation:\n"
               "                       periodic read-only invariant checks "
               "(byte\n"
               "                       conservation, link refcounts, dead-"
               "cable rates,\n"
               "                       incarnation monotonicity); any "
               "violation aborts\n"
               "  --fault-seed=N       seed for fault-model randomness "
               "(query loss draws;\n"
               "                       default 1234, independent of --seed)\n"
               "  --query-loss=P       drop monitor query exchanges with "
               "probability P in [0,1]\n"
               "                       for the whole run (a shorthand "
               "control-plane-only plan)\n"
               "  --query-interval=S   DARD monitor refresh period in "
               "seconds (default:\n"
               "                       1 on fluid, 0.1 on packet; tighten "
               "so daemons notice\n"
               "                       a fault well before it repairs)\n"
               "  --schedule-interval=S  DARD scheduling round: base and "
               "jitter both S,\n"
               "                       i.e. a round every S + U[0,S] "
               "seconds (default:\n"
               "                       5 on fluid, 0.25 on packet)\n"
               "\n"
               "output options:\n"
               "  --run-dir=DIR        write a self-describing run directory "
               "for dardscope:\n"
               "                       trace.jsonl, metrics.csv, "
               "link_samples.csv,\n"
               "                       agg_samples.csv and a manifest.json "
               "recording the\n"
               "                       scenario, seeds, flag values and "
               "wall-clock timings\n"
               "                       (explicit --trace/--metrics/... paths "
               "still win)\n"
               "  --csv                print the summary as metric,value CSV\n"
               "  --trace=FILE         write a JSONL event trace (flow "
               "arrive/elephant/move/complete,\n"
               "                       DARD round decisions)\n"
               "  --metrics=FILE       write the metrics registry "
               "(counters/gauges/latencies) as CSV\n"
               "  --samples=FILE       write sampled per-link utilization as "
               "CSV\n"
               "  --agg-samples=FILE   write sampled aggregate counters "
               "(active flows/elephants,\n"
               "                       throughput) as CSV\n"
               "  --sample-period=S    sampling period in seconds (default "
               "0.5; used by --samples\n"
               "                       and --agg-samples)\n"
               "  --profile            enable the in-sim profiler: scoped "
               "timers on max-min\n"
               "                       reallocation, path enumeration, DARD "
               "rounds and packet\n"
               "                       dispatch; prints a summary and, with "
               "--run-dir, writes\n"
               "                       profile.csv\n"
               "  --snapshot-period=S  emit a run-health snapshot trace event "
               "every S simulated\n"
               "                       seconds (requires --trace or "
               "--run-dir; powers\n"
               "                       `dardscope live`)\n"
               "  --spans              record control-plane spans (schema "
               "v5): per-query,\n"
               "                       refresh, decision and move events "
               "linked by cause\n"
               "                       ids, plus per-link control-byte "
               "attribution\n"
               "                       (control_bytes.csv with --run-dir; "
               "requires --trace\n"
               "                       or --run-dir; powers `dardscope "
               "spans`)\n"
               "  --help               show this message\n",
               kTopos, kPatterns, kSchedulers, kSubstrates, kFaultPresets);
}

struct Options {
  std::string topo = "fattree";
  int size = 8;  // p for fat-tree, D for Clos; ignored for threetier
  std::string pattern = "stride";
  std::string scheduler = "dard";
  std::string substrate = "fluid";
  double flow_mb = 128.0;
  double rate = 1.0;
  double duration = 10.0;
  std::uint64_t seed = 1;
  unsigned replicas = 1;
  unsigned jobs = 1;
  unsigned realloc_threads = 1;
  // Asymmetric-fabric axes; defaults build the classic symmetric fabrics.
  bool weighted = false;
  double oversub = 0.0;     // 0 = 1:1 (full uplinks)
  double speed_skew = 0.0;  // 0 = uniform capacity
  int stripped_pods = 0;
  int stripped_uplinks = 1;
  std::vector<Bps> spine_mix;  // leafspine only; empty = builder default
  std::string faults;  // preset name or JSON plan path; empty = no faults
  bool audit = false;
  std::uint64_t fault_seed = 1234;
  double query_loss = 0.0;
  // DARD control-loop overrides; <= 0 keeps the substrate default. Fault
  // runs tighten these so recovery happens on a sub-second clock.
  double query_interval = -1.0;
  double schedule_interval = -1.0;
  bool csv = false;
  std::string run_dir;
  std::string trace_path;
  std::string metrics_path;
  std::string samples_path;
  std::string agg_samples_path;
  double sample_period = 0.5;
  bool profile = false;
  double snapshot_period = 0.0;  // 0 = no snapshot events
  bool spans = false;
  bool help = false;
};

bool parse(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.size() > std::strlen(prefix) &&
                     arg.compare(0, std::strlen(prefix), prefix) == 0
                 ? arg.c_str() + std::strlen(prefix)
                 : nullptr;
    };
    long n = 0;
    if (const char* v = value("--topo=")) {
      opt->topo = v;
    } else if (const char* v = value("--size=")) {
      if (!parse_long(v, &n) || n < 2) {
        std::fprintf(stderr,
                     "invalid --size: %s (valid: an integer >= 2)\n", v);
        return false;
      }
      opt->size = static_cast<int>(n);
    } else if (const char* v = value("--pattern=")) {
      opt->pattern = v;
    } else if (const char* v = value("--scheduler=")) {
      opt->scheduler = v;
    } else if (const char* v = value("--substrate=")) {
      opt->substrate = v;
    } else if (const char* v = value("--flow-mb=")) {
      if (!parse_double(v, &opt->flow_mb) || opt->flow_mb <= 0) {
        std::fprintf(stderr,
                     "invalid --flow-mb: %s (valid: a number > 0)\n", v);
        return false;
      }
    } else if (const char* v = value("--rate=")) {
      if (!parse_double(v, &opt->rate) || opt->rate <= 0) {
        std::fprintf(stderr, "invalid --rate: %s (valid: a number > 0)\n", v);
        return false;
      }
    } else if (const char* v = value("--duration=")) {
      if (!parse_double(v, &opt->duration) || opt->duration <= 0) {
        std::fprintf(stderr,
                     "invalid --duration: %s (valid: a number > 0)\n", v);
        return false;
      }
    } else if (const char* v = value("--seed=")) {
      if (!parse_u64(v, &opt->seed)) {
        std::fprintf(stderr,
                     "invalid --seed: %s (valid: a non-negative integer)\n",
                     v);
        return false;
      }
    } else if (const char* v = value("--replicas=")) {
      if (!parse_long(v, &n) || n < 1) {
        std::fprintf(stderr,
                     "invalid --replicas: %s (valid: an integer >= 1)\n", v);
        return false;
      }
      opt->replicas = static_cast<unsigned>(n);
    } else if (const char* v = value("--jobs=")) {
      if (!parse_long(v, &n) || n < 0) {
        std::fprintf(stderr,
                     "invalid --jobs: %s (valid: an integer >= 0, 0 = all "
                     "cores)\n",
                     v);
        return false;
      }
      opt->jobs = static_cast<unsigned>(n);
    } else if (const char* v = value("--realloc-threads=")) {
      if (!parse_long(v, &n) || n < 1) {
        std::fprintf(
            stderr,
            "invalid --realloc-threads: %s (valid: an integer >= 1)\n", v);
        return false;
      }
      opt->realloc_threads = static_cast<unsigned>(n);
    } else if (const char* v = value("--oversub=")) {
      if (!parse_double(v, &opt->oversub) || opt->oversub < 1) {
        std::fprintf(stderr,
                     "invalid --oversub: %s (valid: a ratio >= 1)\n", v);
        return false;
      }
    } else if (const char* v = value("--speed-skew=")) {
      if (!parse_double(v, &opt->speed_skew) || opt->speed_skew < 1) {
        std::fprintf(stderr,
                     "invalid --speed-skew: %s (valid: a factor >= 1)\n", v);
        return false;
      }
    } else if (const char* v = value("--stripped-pods=")) {
      if (!parse_long(v, &n) || n < 0) {
        std::fprintf(
            stderr,
            "invalid --stripped-pods: %s (valid: an integer >= 0)\n", v);
        return false;
      }
      opt->stripped_pods = static_cast<int>(n);
    } else if (const char* v = value("--stripped-uplinks=")) {
      if (!parse_long(v, &n) || n < 1) {
        std::fprintf(
            stderr,
            "invalid --stripped-uplinks: %s (valid: an integer >= 1)\n", v);
        return false;
      }
      opt->stripped_uplinks = static_cast<int>(n);
    } else if (const char* v = value("--spine-mix=")) {
      if (!parse_gbps_list(v, &opt->spine_mix)) {
        std::fprintf(stderr,
                     "invalid --spine-mix: %s (valid: comma-separated Gbps "
                     "values > 0, e.g. 10,40)\n",
                     v);
        return false;
      }
    } else if (arg == "--weighted") {
      opt->weighted = true;
    } else if (const char* v = value("--faults=")) {
      opt->faults = v;
    } else if (const char* v = value("--fault-seed=")) {
      if (!parse_u64(v, &opt->fault_seed)) {
        std::fprintf(
            stderr,
            "invalid --fault-seed: %s (valid: a non-negative integer)\n", v);
        return false;
      }
    } else if (const char* v = value("--query-interval=")) {
      if (!parse_double(v, &opt->query_interval) ||
          opt->query_interval <= 0) {
        std::fprintf(stderr,
                     "invalid --query-interval: %s (valid: a number > 0)\n",
                     v);
        return false;
      }
    } else if (const char* v = value("--schedule-interval=")) {
      if (!parse_double(v, &opt->schedule_interval) ||
          opt->schedule_interval <= 0) {
        std::fprintf(
            stderr, "invalid --schedule-interval: %s (valid: a number > 0)\n",
            v);
        return false;
      }
    } else if (const char* v = value("--query-loss=")) {
      if (!parse_double(v, &opt->query_loss) || opt->query_loss < 0 ||
          opt->query_loss > 1) {
        std::fprintf(
            stderr,
            "invalid --query-loss: %s (valid: a probability in [0, 1])\n", v);
        return false;
      }
    } else if (const char* v = value("--run-dir=")) {
      opt->run_dir = v;
    } else if (const char* v = value("--trace=")) {
      opt->trace_path = v;
    } else if (const char* v = value("--metrics=")) {
      opt->metrics_path = v;
    } else if (const char* v = value("--samples=")) {
      opt->samples_path = v;
    } else if (const char* v = value("--agg-samples=")) {
      opt->agg_samples_path = v;
    } else if (const char* v = value("--sample-period=")) {
      if (!parse_double(v, &opt->sample_period) || opt->sample_period <= 0) {
        std::fprintf(stderr,
                     "invalid --sample-period: %s (valid: a number > 0)\n",
                     v);
        return false;
      }
    } else if (const char* v = value("--snapshot-period=")) {
      if (!parse_double(v, &opt->snapshot_period) ||
          opt->snapshot_period <= 0) {
        std::fprintf(stderr,
                     "invalid --snapshot-period: %s (valid: a number > 0)\n",
                     v);
        return false;
      }
    } else if (arg == "--spans") {
      opt->spans = true;
    } else if (arg == "--audit") {
      opt->audit = true;
    } else if (arg == "--profile") {
      opt->profile = true;
    } else if (arg == "--csv") {
      opt->csv = true;
    } else if (arg == "--help" || arg == "-h") {
      opt->help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", arg.c_str());
      print_usage(stderr);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, &opt)) return 2;
  if (opt.help) {
    print_usage(stdout);
    return 0;
  }
  if (opt.faults == "list") {
    std::printf("fault presets (--faults=NAME):\n");
    for (const auto& p : faults::FaultPlan::presets())
      std::printf("  %-14s %s\n", p.name, p.summary);
    return 0;
  }

  const bool asymmetric_flags = opt.oversub > 0 || opt.speed_skew > 0 ||
                                opt.stripped_pods > 0 ||
                                !opt.spine_mix.empty();
  topo::Topology network;
  if (opt.topo == "fattree") {
    topo::FatTreeParams params{.p = opt.size};
    if (!opt.spine_mix.empty()) {
      std::fprintf(stderr,
                   "--spine-mix applies to leafspine only; for fattree use "
                   "--speed-skew\n");
      return 2;
    }
    if (opt.oversub > 0) {
      const int half = opt.size / 2;
      const int uplinks =
          std::max(1, static_cast<int>(half / opt.oversub + 0.5));
      params.uplinks_per_agg = std::min(uplinks, half);
    }
    if (opt.speed_skew > 1)
      params.core_capacities = {params.link_capacity,
                                opt.speed_skew * params.link_capacity};
    if (opt.stripped_pods > 0) {
      params.stripped_pods = opt.stripped_pods;
      params.stripped_pod_uplinks = opt.stripped_uplinks;
    }
    const std::string err = topo::validate_fat_tree(params);
    if (!err.empty()) {
      std::fprintf(stderr, "invalid fat-tree parameters: %s\n", err.c_str());
      return 2;
    }
    network = topo::build_fat_tree(params);
  } else if (opt.topo == "leafspine") {
    // --size=N: N leaves over N/2 spines with N/2 hosts per leaf, so the
    // flag scales this fabric the way p scales a fat-tree.
    topo::LeafSpineParams params;
    params.leaves = opt.size;
    params.spines = std::max(1, opt.size / 2);
    params.hosts_per_leaf = std::max(1, opt.size / 2);
    if (!opt.spine_mix.empty()) params.spine_capacities = opt.spine_mix;
    if (opt.speed_skew > 1 && opt.spine_mix.empty())
      params.spine_capacities = {4 * kGbps, opt.speed_skew * 4 * kGbps};
    if (opt.oversub > 0) {
      std::fprintf(stderr,
                   "--oversub applies to fattree only; strip leafspine "
                   "uplinks with --stripped-pods/--stripped-uplinks\n");
      return 2;
    }
    if (opt.stripped_pods > 0) {
      params.stripped_leaves = opt.stripped_pods;
      params.stripped_leaf_uplinks = opt.stripped_uplinks;
    }
    const std::string err = topo::validate_leaf_spine(params);
    if (!err.empty()) {
      std::fprintf(stderr, "invalid leaf-spine parameters: %s\n",
                   err.c_str());
      return 2;
    }
    network = topo::build_leaf_spine(params);
  } else if (opt.topo == "clos") {
    if (asymmetric_flags) {
      std::fprintf(stderr,
                   "asymmetric-fabric flags need --topo=fattree or "
                   "--topo=leafspine\n");
      return 2;
    }
    network = topo::build_clos(
        {.d_i = opt.size, .d_a = opt.size, .hosts_per_tor = 4});
  } else if (opt.topo == "threetier") {
    if (asymmetric_flags) {
      std::fprintf(stderr,
                   "asymmetric-fabric flags need --topo=fattree or "
                   "--topo=leafspine\n");
      return 2;
    }
    network = topo::build_three_tier({});
  } else {
    std::fprintf(stderr, "unknown topology: %s (valid: %s)\n",
                 opt.topo.c_str(), kTopos);
    return 2;
  }

  harness::ExperimentConfig cfg;
  cfg.realloc_threads = opt.realloc_threads;
  if (opt.pattern == "random") {
    cfg.workload.pattern.kind = traffic::PatternKind::Random;
  } else if (opt.pattern == "staggered") {
    cfg.workload.pattern.kind = traffic::PatternKind::Staggered;
  } else if (opt.pattern == "stride") {
    cfg.workload.pattern.kind = traffic::PatternKind::Stride;
  } else {
    std::fprintf(stderr, "unknown pattern: %s (valid: %s)\n",
                 opt.pattern.c_str(), kPatterns);
    return 2;
  }
  if (opt.scheduler == "ecmp") {
    cfg.scheduler = harness::SchedulerKind::Ecmp;
  } else if (opt.scheduler == "wcmp") {
    cfg.scheduler = harness::SchedulerKind::Ecmp;
    opt.weighted = true;
  } else if (opt.scheduler == "pvlb") {
    cfg.scheduler = harness::SchedulerKind::Pvlb;
  } else if (opt.scheduler == "dard") {
    cfg.scheduler = harness::SchedulerKind::Dard;
  } else if (opt.scheduler == "hedera") {
    cfg.scheduler = harness::SchedulerKind::Hedera;
  } else if (opt.scheduler == "texcp") {
    cfg.scheduler = harness::SchedulerKind::Texcp;
  } else {
    std::fprintf(stderr, "unknown scheduler: %s (valid: %s)\n",
                 opt.scheduler.c_str(), kSchedulers);
    return 2;
  }
  if (opt.substrate == "fluid") {
    cfg.substrate = harness::Substrate::Fluid;
  } else if (opt.substrate == "packet") {
    cfg.substrate = harness::Substrate::Packet;
    // Packet transfers last around a second, not the testbed's tens:
    // tighten the control intervals so flows span several scheduling
    // rounds (the same scaling tests/substrate_test.cc pins).
    cfg.elephant_threshold = 0.1;
    cfg.dard.query_interval = 0.1;
    cfg.dard.schedule_base = 0.25;
    cfg.dard.schedule_jitter = 0.25;
    cfg.dard.delta = 1 * kMbps;
  } else {
    std::fprintf(stderr, "unknown substrate: %s (valid: %s)\n",
                 opt.substrate.c_str(), kSubstrates);
    return 2;
  }
  if (cfg.scheduler == harness::SchedulerKind::Texcp &&
      cfg.substrate != harness::Substrate::Packet) {
    std::fprintf(stderr,
                 "texcp scatters packets and only runs on the packet "
                 "substrate (add --substrate=packet)\n");
    return 2;
  }
  // Explicit control-loop overrides beat the substrate defaults above.
  if (opt.query_interval > 0) cfg.dard.query_interval = opt.query_interval;
  if (opt.schedule_interval > 0) {
    cfg.dard.schedule_base = opt.schedule_interval;
    cfg.dard.schedule_jitter = opt.schedule_interval;
  }
  cfg.weighted_paths = opt.weighted;
  cfg.audit = opt.audit;
  cfg.workload.flow_size = static_cast<Bytes>(opt.flow_mb * kMiB);
  cfg.workload.mean_interarrival = 1.0 / opt.rate;
  cfg.workload.duration = opt.duration;
  cfg.workload.seed = opt.seed;

  if (!opt.faults.empty() || opt.query_loss > 0) {
    if (cfg.scheduler == harness::SchedulerKind::Texcp) {
      std::fprintf(stderr,
                   "texcp has no fault-injection adapter; --faults and "
                   "--query-loss need an agent scheduler (%s)\n",
                   "ecmp, pvlb, dard, hedera");
      return 2;
    }
    if (!opt.faults.empty()) {
      std::string err;
      auto plan = faults::FaultPlan::load(opt.faults, &err);
      if (!plan) {
        std::fprintf(stderr, "invalid --faults: %s\n", err.c_str());
        return 2;
      }
      cfg.faults.plan = std::move(*plan);
    }
    // --query-loss: a control-plane-only degradation spanning the whole run.
    if (opt.query_loss > 0)
      cfg.faults.plan.add_control_window(
          faults::ControlWindow{0.0, 1e18, opt.query_loss, 0.0, false});
    cfg.faults.seed = opt.fault_seed;
  }

  // --run-dir: one directory holding every artifact under its canonical
  // name plus a manifest describing the run (dardscope's input). Explicit
  // --trace/--metrics/... paths keep winning for the file they name.
  if (!opt.run_dir.empty() && opt.replicas == 1) {
    std::error_code ec;
    std::filesystem::create_directories(opt.run_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create run dir %s: %s\n",
                   opt.run_dir.c_str(), ec.message().c_str());
      return 2;
    }
    const auto in_dir = [&](const char* name) {
      return (std::filesystem::path(opt.run_dir) / name).string();
    };
    if (opt.trace_path.empty()) opt.trace_path = in_dir(harness::kTraceFile);
    if (opt.metrics_path.empty())
      opt.metrics_path = in_dir(harness::kMetricsFile);
    if (opt.samples_path.empty())
      opt.samples_path = in_dir(harness::kLinkSamplesFile);
    if (opt.agg_samples_path.empty())
      opt.agg_samples_path = in_dir(harness::kAggSamplesFile);
  }

  if (opt.replicas > 1) {
    // Replica sweep: same experiment over workload seeds N..N+K-1, run on
    // a thread pool. Per-replica results are identical for any --jobs.
    if (!opt.trace_path.empty() || !opt.metrics_path.empty() ||
        !opt.samples_path.empty() || !opt.agg_samples_path.empty() ||
        !opt.run_dir.empty() || opt.profile || opt.snapshot_period > 0 ||
        opt.spans) {
      std::fprintf(stderr,
                   "--trace/--metrics/--samples/--run-dir/--profile/"
                   "--snapshot-period/--spans need --replicas=1\n");
      return 2;
    }
    std::vector<harness::ExperimentCell> cells(opt.replicas);
    for (unsigned k = 0; k < opt.replicas; ++k) {
      cells[k].topology = &network;
      cells[k].config = cfg;
      cells[k].config.workload.seed = opt.seed + k;
    }
    const auto results = harness::run_experiments_parallel(cells, opt.jobs);

    OnlineStats avg;
    for (const auto& r : results) avg.add(r.avg_transfer_time);
    if (opt.csv) {
      std::printf("replica,seed,flows,avg_transfer_s,p99_transfer_s,"
                  "reroutes\n");
      for (unsigned k = 0; k < opt.replicas; ++k)
        std::printf("%u,%llu,%zu,%.4f,%.4f,%zu\n", k,
                    static_cast<unsigned long long>(opt.seed + k),
                    results[k].flows, results[k].avg_transfer_time,
                    results[k].transfer_times.percentile(0.99),
                    results[k].reroutes);
      std::printf("mean,,,%.4f,,\n", avg.mean());
    } else {
      std::printf("%s on %s: %u replicas (seeds %llu..%llu), %u thread(s)\n",
                  results.front().scheduler.c_str(), opt.topo.c_str(),
                  opt.replicas, static_cast<unsigned long long>(opt.seed),
                  static_cast<unsigned long long>(opt.seed + opt.replicas - 1),
                  opt.jobs == 0 ? std::thread::hardware_concurrency()
                                : opt.jobs);
      for (unsigned k = 0; k < opt.replicas; ++k)
        std::printf("  seed %-6llu %5zu flows  avg %.2f s  p99 %.2f s  "
                    "%zu reroutes\n",
                    static_cast<unsigned long long>(opt.seed + k),
                    results[k].flows, results[k].avg_transfer_time,
                    results[k].transfer_times.percentile(0.99),
                    results[k].reroutes);
      std::printf("  avg transfer time over replicas: %.2f s (min %.2f, "
                  "max %.2f)\n",
                  avg.mean(), avg.min(), avg.max());
    }
    return 0;
  }

  // Telemetry wiring; everything stays null/zero (and therefore free)
  // unless the corresponding flag was given.
  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  std::unique_ptr<obs::TraceObserver> trace_observer;
  if (!opt.trace_path.empty()) {
    trace_file.open(opt.trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open trace file: %s\n",
                   opt.trace_path.c_str());
      return 2;
    }
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
    trace_observer = std::make_unique<obs::TraceObserver>(*trace_sink);
    cfg.telemetry.observer = trace_observer.get();
  }
  obs::MetricsRegistry metrics;
  if (!opt.metrics_path.empty()) cfg.telemetry.metrics = &metrics;
  if (!opt.samples_path.empty() || !opt.agg_samples_path.empty())
    cfg.telemetry.sample_period = opt.sample_period;
  obs::Profiler profiler;
  if (opt.profile) cfg.telemetry.profiler = &profiler;
  if (opt.snapshot_period > 0) {
    if (cfg.telemetry.observer == nullptr) {
      std::fprintf(stderr,
                   "--snapshot-period needs a trace to land in; add --trace "
                   "or --run-dir\n");
      return 2;
    }
    cfg.telemetry.snapshot_period = opt.snapshot_period;
  }
  std::unique_ptr<obs::SpanRecorder> span_recorder;
  if (opt.spans) {
    if (cfg.telemetry.observer == nullptr) {
      std::fprintf(stderr,
                   "--spans needs a trace to land in; add --trace or "
                   "--run-dir\n");
      return 2;
    }
    span_recorder = std::make_unique<obs::SpanRecorder>(
        cfg.telemetry.observer, &network, fabric::kDardQueryBytes,
        fabric::kDardReplyBytes);
    cfg.telemetry.spans = span_recorder.get();
  }

  const auto result = harness::run_experiment(network, cfg);

  if (trace_sink != nullptr) {
    trace_sink->flush();
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 trace_sink->written(), opt.trace_path.c_str());
  }
  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open metrics file: %s\n",
                   opt.metrics_path.c_str());
      return 2;
    }
    metrics.write_csv(out);
  }
  if (!opt.samples_path.empty() && result.series != nullptr) {
    std::ofstream out(opt.samples_path);
    if (!out) {
      std::fprintf(stderr, "cannot open samples file: %s\n",
                   opt.samples_path.c_str());
      return 2;
    }
    result.series->write_link_csv(out);
  }
  if (!opt.agg_samples_path.empty() && result.series != nullptr) {
    std::ofstream out(opt.agg_samples_path);
    if (!out) {
      std::fprintf(stderr, "cannot open aggregate samples file: %s\n",
                   opt.agg_samples_path.c_str());
      return 2;
    }
    result.series->write_aggregate_csv(out);
  }
  std::string profile_path;
  if (opt.profile && !opt.run_dir.empty()) {
    profile_path =
        (std::filesystem::path(opt.run_dir) / harness::kProfileFile).string();
    std::ofstream out(profile_path);
    if (!out) {
      std::fprintf(stderr, "cannot open profile file: %s\n",
                   profile_path.c_str());
      return 2;
    }
    profiler.write_csv(out);
  }

  std::string control_bytes_path;
  if (span_recorder != nullptr && !opt.run_dir.empty()) {
    control_bytes_path =
        (std::filesystem::path(opt.run_dir) / harness::kControlBytesFile)
            .string();
    std::ofstream out(control_bytes_path);
    if (!out) {
      std::fprintf(stderr, "cannot open control-bytes file: %s\n",
                   control_bytes_path.c_str());
      return 2;
    }
    span_recorder->write_link_csv(out);
  }

  if (!opt.run_dir.empty()) {
    auto manifest = harness::build_manifest(network, cfg, result);
    manifest.argv.assign(argv + 1, argv + argc);
    manifest.topology = opt.topo;
    manifest.pattern = opt.pattern;
    // Record only artifacts that landed inside the run dir, by their name
    // relative to it — a relocated run dir stays self-contained.
    const auto relative_name = [&](const std::string& path) -> std::string {
      const auto p = std::filesystem::path(path);
      return p.parent_path() == std::filesystem::path(opt.run_dir)
                 ? p.filename().string()
                 : std::string();
    };
    manifest.trace_file = relative_name(opt.trace_path);
    manifest.metrics_file = relative_name(opt.metrics_path);
    manifest.profile_file = relative_name(profile_path);
    manifest.control_bytes_file = relative_name(control_bytes_path);
    if (result.series != nullptr) {
      manifest.link_samples_file = relative_name(opt.samples_path);
      manifest.agg_samples_file = relative_name(opt.agg_samples_path);
    }
    const auto manifest_path =
        std::filesystem::path(opt.run_dir) / harness::kManifestFile;
    std::ofstream out(manifest_path);
    if (!out) {
      std::fprintf(stderr, "cannot open manifest file: %s\n",
                   manifest_path.string().c_str());
      return 2;
    }
    harness::write_manifest_json(out, manifest);
  }

  if (opt.csv) {
    std::printf("metric,value\n");
    std::printf("scheduler,%s\n", result.scheduler.c_str());
    std::printf("flows,%zu\n", result.flows);
    std::printf("avg_transfer_s,%.4f\n", result.avg_transfer_time);
    std::printf("p50_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.5));
    std::printf("p90_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.9));
    std::printf("p99_transfer_s,%.4f\n",
                result.transfer_times.percentile(0.99));
    std::printf("path_switches_p90,%.0f\n",
                result.path_switch_percentile(0.9));
    std::printf("path_switches_max,%.0f\n", result.max_path_switches());
    std::printf("peak_elephants,%zu\n", result.peak_elephants);
    std::printf("control_bytes,%llu\n",
                static_cast<unsigned long long>(result.control_bytes));
    std::printf("reroutes,%zu\n", result.reroutes);
    // Span rows only under --spans, so default CSV output stays
    // byte-identical to a build without the recorder.
    if (opt.spans) {
      std::printf("span_count,%llu\n",
                  static_cast<unsigned long long>(result.span_count));
      std::printf("span_messages,%llu\n",
                  static_cast<unsigned long long>(result.span_messages));
      std::printf("span_bytes,%llu\n",
                  static_cast<unsigned long long>(result.span_bytes));
      std::printf("goodput_bytes,%llu\n",
                  static_cast<unsigned long long>(result.goodput_bytes));
      std::printf("control_overhead_ratio,%.8f\n",
                  result.control_overhead_ratio());
    }
    if (cfg.substrate == harness::Substrate::Packet) {
      std::printf("retransmissions,%llu\n",
                  static_cast<unsigned long long>(result.retransmissions));
      std::printf("packet_drops,%llu\n",
                  static_cast<unsigned long long>(result.packet_drops));
      std::printf("retransmission_rate_mean,%.4f\n",
                  result.retransmission_rates.empty()
                      ? 0.0
                      : result.retransmission_rates.mean());
    }
    // Recovery rows appear only under an active plan, so fault-free CSV
    // output stays byte-identical to the pre-fault-subsystem harness.
    if (cfg.faults.active()) {
      std::printf("faults_injected,%llu\n",
                  static_cast<unsigned long long>(result.faults_injected));
      std::printf("queries_attempted,%llu\n",
                  static_cast<unsigned long long>(
                      result.recovery.queries_attempted));
      std::printf(
          "queries_lost,%llu\n",
          static_cast<unsigned long long>(result.recovery.queries_lost));
      std::printf("goodput_baseline_bps,%.0f\n",
                  result.recovery.baseline_goodput);
      std::printf("goodput_dip_bps,%.0f\n", result.recovery.dip_goodput);
      std::printf("goodput_dip_frac,%.4f\n", result.recovery.dip_fraction);
      std::printf("time_to_recover_s,%.4f\n",
                  result.recovery.time_to_recover);
      std::printf("starvation_s,%.4f\n",
                  result.recovery.starvation_seconds);
      std::printf("agent_crashes,%llu\n",
                  static_cast<unsigned long long>(
                      result.recovery.agent_crashes));
      std::printf("agent_restarts,%llu\n",
                  static_cast<unsigned long long>(
                      result.recovery.agent_restarts));
      std::printf("reconvergence_s,%.4f\n",
                  result.recovery.reconvergence_s);
      std::printf("churn_window_moves,%llu\n",
                  static_cast<unsigned long long>(
                      result.recovery.churn_window_moves));
    }
  } else {
    std::printf("%s on %s (%zu hosts, %s substrate), %s pattern, "
                "%.2f flows/s/host for %.0fs\n",
                result.scheduler.c_str(), opt.topo.c_str(),
                network.hosts().size(), harness::to_string(cfg.substrate),
                opt.pattern.c_str(), opt.rate, opt.duration);
    std::printf("  flows completed:    %zu\n", result.flows);
    std::printf("  avg transfer time:  %.2f s  (p50 %.2f, p90 %.2f, p99 "
                "%.2f)\n",
                result.avg_transfer_time,
                result.transfer_times.percentile(0.5),
                result.transfer_times.percentile(0.9),
                result.transfer_times.percentile(0.99));
    std::printf("  path switches p90:  %.0f (max %.0f)\n",
                result.path_switch_percentile(0.9),
                result.max_path_switches());
    std::printf("  peak elephants:     %zu\n", result.peak_elephants);
    std::printf("  control traffic:    %.1f KB/s mean, %.1f KB/s peak\n",
                result.control_mean_rate / 1000.0,
                result.control_peak_rate / 1000.0);
    std::printf("  reroutes:           %zu\n", result.reroutes);
    if (opt.spans)
      std::printf("  control spans:      %llu spans, %llu messages, %llu "
                  "bytes (%.4f%% of goodput)\n",
                  static_cast<unsigned long long>(result.span_count),
                  static_cast<unsigned long long>(result.span_messages),
                  static_cast<unsigned long long>(result.span_bytes),
                  result.control_overhead_ratio() * 100.0);
    if (cfg.substrate == harness::Substrate::Packet)
      std::printf("  retransmissions:    %llu (%llu drops, mean rate "
                  "%.4f)\n",
                  static_cast<unsigned long long>(result.retransmissions),
                  static_cast<unsigned long long>(result.packet_drops),
                  result.retransmission_rates.empty()
                      ? 0.0
                      : result.retransmission_rates.mean());
    if (cfg.faults.active()) {
      std::printf("  faults injected:    %llu transitions\n",
                  static_cast<unsigned long long>(result.faults_injected));
      if (result.recovery.queries_attempted > 0)
        std::printf("  control loss:       %llu of %llu query exchanges\n",
                    static_cast<unsigned long long>(
                        result.recovery.queries_lost),
                    static_cast<unsigned long long>(
                        result.recovery.queries_attempted));
      if (result.recovery.baseline_goodput > 0) {
        std::printf("  goodput dip:        %.2f -> %.2f Gbps (%.0f%% deep)\n",
                    result.recovery.baseline_goodput / 1e9,
                    result.recovery.dip_goodput / 1e9,
                    result.recovery.dip_fraction * 100.0);
        if (result.recovery.time_to_recover >= 0)
          std::printf("  time to recover:    %.2f s (to %.0f%% of baseline)\n",
                      result.recovery.time_to_recover,
                      cfg.faults.recovery_fraction * 100.0);
        else
          std::printf("  time to recover:    never (within this run)\n");
        std::printf("  starvation:         %.2f s under %.0f%% of baseline\n",
                    result.recovery.starvation_seconds,
                    cfg.faults.starvation_fraction * 100.0);
      }
      if (result.recovery.agent_crashes > 0 ||
          result.recovery.agent_restarts > 0) {
        std::printf("  daemon churn:       %llu crashes, %llu restarts\n",
                    static_cast<unsigned long long>(
                        result.recovery.agent_crashes),
                    static_cast<unsigned long long>(
                        result.recovery.agent_restarts));
        if (result.recovery.reconvergence_s >= 0)
          std::printf("  reconvergence:      %.2f s to the first accepted "
                      "round (%llu moves in the %.1f s churn window)\n",
                      result.recovery.reconvergence_s,
                      static_cast<unsigned long long>(
                          result.recovery.churn_window_moves),
                      cfg.faults.churn_window);
        else if (result.recovery.agent_restarts > 0)
          std::printf("  reconvergence:      no accepted round after the "
                      "last restart (within this run)\n");
      }
    }
    // Wall-clock phase profile — host time, so only in the human-readable
    // report (CSV output stays deterministic for a given scenario).
    std::printf("  wall clock:         %.2f s (setup %.2f, run %.2f, "
                "collect %.2f)\n",
                result.timings.total_s(), result.timings.setup_s,
                result.timings.run_s, result.timings.collect_s);
    if (!opt.metrics_path.empty())
      std::printf("  metrics:            %s\n", metrics.summary().c_str());
    if (opt.profile) std::printf("  profile:\n%s", profiler.summary().c_str());
    if (!opt.run_dir.empty())
      std::printf("  run dir:            %s\n", opt.run_dir.c_str());
  }
  return 0;
}
