// A tour of DARD's hierarchical addressing (paper Section 2.3): prefix
// allocation down the core-rooted trees, the downhill/uphill tables of an
// aggregation switch (paper Table 2), path encoding into a source/
// destination address pair, and hop-by-hop forwarding.
#include <cstdio>

#include "addressing/hierarchical.h"
#include "addressing/name_service.h"
#include "fabric/controller.h"
#include "topology/builders.h"

int main() {
  using namespace dard;

  const topo::Topology t = topo::build_fat_tree({.p = 4});
  const addr::AddressingPlan plan(t);

  // Every host receives one address per core-rooted tree.
  const NodeId host = t.hosts().front();
  std::printf("host %s addresses (one per tree, address = downhill path):\n",
              t.node(host).name.c_str());
  for (const auto& rec : plan.host_addresses(host)) {
    std::printf("  %-12s via", rec.address.to_string().c_str());
    for (const NodeId n : rec.alloc_path)
      std::printf(" %s", t.node(n).name.c_str());
    std::printf("\n");
  }

  // An aggregation switch's two tables (paper Table 2).
  const NodeId agg = t.aggs().front();
  std::printf("\n%s downhill table (prefix -> child link):\n",
              t.node(agg).name.c_str());
  for (const auto& [prefix, link] : plan.downhill_table(agg).entries())
    std::printf("  %-14s -> %s\n", prefix.to_string().c_str(),
                t.node(t.link(link).dst).name.c_str());
  std::printf("%s uphill table (prefix -> parent link):\n",
              t.node(agg).name.c_str());
  for (const auto& [prefix, link] : plan.uphill_table(agg).entries())
    std::printf("  %-14s -> %s\n", prefix.to_string().c_str(),
                t.node(t.link(link).dst).name.c_str());

  // Encode a specific path as an address pair and trace it.
  const NodeId src = t.hosts().front();
  const NodeId dst = t.hosts().back();
  topo::PathRepository repo(t);
  const auto& tor_paths =
      repo.tor_paths(t.tor_of_host(src), t.tor_of_host(dst));
  std::printf("\n%zu equal-cost paths %s -> %s; encoding each:\n",
              tor_paths.size(), t.node(src).name.c_str(),
              t.node(dst).name.c_str());
  for (const auto& tp : tor_paths) {
    const topo::Path full = topo::host_path(t, src, dst, tp);
    const auto pair = plan.encode(full);
    if (!pair) continue;
    std::printf("  (%s, %s):", pair->first.to_string().c_str(),
                pair->second.to_string().c_str());
    for (const NodeId n : plan.trace(pair->first, pair->second).nodes)
      std::printf(" %s", t.node(n).name.c_str());
    std::printf("\n");
  }

  // The one-time NOX-style static table installation.
  fabric::ForwardingFabric fabric(t);
  const auto report = fabric::StaticTableController::install(plan, &fabric);
  std::printf("\ncontroller installed %zu entries across %zu switches "
              "(used once, at boot)\n",
              report.entries, report.switches);

  // Location-independent IDs for TCP connections.
  const addr::NameService ns(plan);
  std::printf("name service: %zu host IDs; host 0 resolves to %zu "
              "addresses\n",
              ns.host_count(), ns.resolve(0).size());

  std::printf("\nordinary (destination-only) tables %s on this topology\n",
              plan.ordinary_mode_available() ? "WORK" : "DO NOT WORK");
  return 0;
}
