// Quickstart: run DARD against ECMP on a p=4 fat-tree under the paper's
// stride traffic pattern and report the improvement in average file
// transfer time.
//
//   ./quickstart [flows_per_second]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dard;

  const double rate = argc > 1 ? std::atof(argv[1]) : 1.0;

  // 1. Build the network: a 4-port fat-tree (16 hosts, 4 equal-cost paths
  //    between any two pods).
  const topo::Topology network = topo::build_fat_tree({.p = 4});
  std::printf("fat-tree p=4: %zu hosts, %zu switches, %zu directed links\n",
              network.hosts().size(),
              network.node_count() - network.hosts().size(),
              network.link_count());

  // 2. Describe the workload: every host opens 128 MiB elephant transfers
  //    to the host one pod over, with exponential inter-arrivals.
  harness::ExperimentConfig cfg;
  cfg.workload.pattern.kind = traffic::PatternKind::Stride;
  cfg.workload.mean_interarrival = 1.0 / rate;
  cfg.workload.flow_size = 128 * kMiB;
  cfg.workload.duration = 20.0;
  cfg.workload.seed = 7;
  cfg.dard.schedule_base = 2.0;  // scaled-down control intervals, see README
  cfg.dard.schedule_jitter = 2.0;
  cfg.dard.query_interval = 0.5;

  // 3. Run the same workload under ECMP and under DARD.
  cfg.scheduler = harness::SchedulerKind::Ecmp;
  const auto ecmp = harness::run_experiment(network, cfg);
  cfg.scheduler = harness::SchedulerKind::Dard;
  const auto dard = harness::run_experiment(network, cfg);

  // 4. Compare.
  std::printf("\n%zu flows at %.1f flows/s/host\n", dard.flows, rate);
  std::printf("  ECMP  avg transfer time: %6.2f s\n", ecmp.avg_transfer_time);
  std::printf("  DARD  avg transfer time: %6.2f s  (%zu selfish moves)\n",
              dard.avg_transfer_time, dard.reroutes);
  std::printf("  improvement: %.1f%%\n",
              100.0 * harness::improvement_over(ecmp, dard));
  std::printf("  90%%-ile path switches per elephant: %.0f (max %.0f)\n",
              dard.path_switch_percentile(0.9), dard.max_path_switches());
  std::printf("  DARD control traffic: %.1f KB/s mean\n",
              dard.control_mean_rate / 1000.0);
  return 0;
}
