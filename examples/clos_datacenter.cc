// A VL2-style Clos datacenter under the staggered traffic mix, comparing
// all four schedulers (paper Section 4.3.2). Staggered traffic keeps most
// flows inside pods — the regime where DARD's per-flow scheduling can beat
// even the centralized scheduler, whose per-destination-host granularity
// cannot separate intra-pod collisions.
//
//   ./clos_datacenter [d] [flows_per_second]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "harness/experiment.h"
#include "topology/builders.h"

int main(int argc, char** argv) {
  using namespace dard;

  const int d = argc > 1 ? std::atoi(argv[1]) : 4;
  const double rate = argc > 2 ? std::atof(argv[2]) : 1.0;

  const topo::Topology network =
      topo::build_clos({.d_i = d, .d_a = d, .hosts_per_tor = 2});
  std::printf(
      "Clos D_I=D_A=%d: %zu hosts, %zu ToRs (dual-homed), %zu aggregation, "
      "%zu intermediate switches; %d paths between inter-pod ToRs\n\n",
      d, network.hosts().size(), network.tors().size(), network.aggs().size(),
      network.cores().size(), topo::clos_inter_pod_paths(d));

  harness::ExperimentConfig cfg;
  cfg.workload.pattern.kind = traffic::PatternKind::Staggered;
  cfg.workload.pattern.tor_p = 0.5;
  cfg.workload.pattern.pod_p = 0.3;
  cfg.workload.mean_interarrival = 1.0 / rate;
  cfg.workload.flow_size = 128 * kMiB;
  cfg.workload.duration = 20.0;
  cfg.workload.seed = 11;
  cfg.dard.schedule_base = 2.0;
  cfg.dard.schedule_jitter = 2.0;
  cfg.dard.query_interval = 0.5;
  cfg.hedera.interval = 2.0;

  AsciiTable table({"scheduler", "avg transfer (s)", "median (s)", "p90 (s)",
                    "path switches p90", "control KB/s"});
  for (const auto kind :
       {harness::SchedulerKind::Ecmp, harness::SchedulerKind::Pvlb,
        harness::SchedulerKind::Dard, harness::SchedulerKind::Hedera}) {
    cfg.scheduler = kind;
    const auto r = harness::run_experiment(network, cfg);
    table.add_row({r.scheduler, AsciiTable::fmt(r.avg_transfer_time),
                   AsciiTable::fmt(r.transfer_times.percentile(0.5)),
                   AsciiTable::fmt(r.transfer_times.percentile(0.9)),
                   AsciiTable::fmt(r.path_switch_percentile(0.9), 0),
                   AsciiTable::fmt(r.control_mean_rate / 1000.0, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Staggered traffic keeps bottlenecks near the edge: random\n"
              "flow-level scheduling and the centralized scheduler have\n"
              "little room, while DARD still separates what it can.\n");
  return 0;
}
